// Spreading correctness: GM, GM-sort, and SM must all reproduce a serial
// reference spreading exactly (up to atomics' floating-point reassociation),
// across dimensions, precisions, and point distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "cpu/direct.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/spread.hpp"
#include "spreadinterp/spread_impl.hpp"  // detail::dispatch_width
#include "vgpu/device.hpp"

namespace spread = cf::spread;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

/// Serial reference: textbook periodized-kernel accumulation (paper eq. (7)).
template <typename T>
std::vector<std::complex<T>> reference_spread(const spread::GridSpec& grid,
                                              const spread::KernelParams<T>& kp,
                                              const std::vector<T>& xg,
                                              const std::vector<T>& yg,
                                              const std::vector<T>& zg,
                                              const std::vector<std::complex<T>>& c) {
  std::vector<std::complex<double>> fw(static_cast<std::size_t>(grid.total()), {0, 0});
  const int dim = grid.dim;
  for (std::size_t j = 0; j < xg.size(); ++j) {
    T vals[3][spread::kMaxWidth];
    std::int64_t idx[3][spread::kMaxWidth];
    const T px[3] = {xg[j], dim >= 2 ? yg[j] : T(0), dim >= 3 ? zg[j] : T(0)};
    for (int d = 0; d < dim; ++d) {
      const std::int64_t l0 = spread::es_values(kp, px[d], vals[d]);
      for (int i = 0; i < kp.w; ++i) idx[d][i] = spread::wrap_index(l0 + i, grid.nf[d]);
    }
    const std::complex<double> cj(c[j].real(), c[j].imag());
    const int w1 = dim >= 2 ? kp.w : 1, w2 = dim >= 3 ? kp.w : 1;
    for (int i2 = 0; i2 < w2; ++i2)
      for (int i1 = 0; i1 < w1; ++i1)
        for (int i0 = 0; i0 < kp.w; ++i0) {
          double v = double(vals[0][i0]);
          if (dim >= 2) v *= double(vals[1][i1]);
          if (dim >= 3) v *= double(vals[2][i2]);
          const std::int64_t lin =
              idx[0][i0] +
              grid.nf[0] * ((dim >= 2 ? idx[1][i1] : 0) +
                            grid.nf[1] * (dim >= 3 ? idx[2][i2] : 0));
          fw[static_cast<std::size_t>(lin)] += cj * v;
        }
  }
  std::vector<std::complex<T>> out(fw.size());
  for (std::size_t i = 0; i < fw.size(); ++i)
    out[i] = {static_cast<T>(fw[i].real()), static_cast<T>(fw[i].imag())};
  return out;
}

template <typename T>
double grid_rel_err(const std::vector<std::complex<T>>& a,
                    const std::vector<std::complex<T>>& b) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::norm(std::complex<double>(a[i].real() - b[i].real(),
                                          a[i].imag() - b[i].imag()));
    den += std::norm(std::complex<double>(b[i].real(), b[i].imag()));
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

enum class Dist { Rand, Cluster, Edge };

template <typename T>
struct Workload {
  spread::GridSpec grid;
  spread::BinSpec bins;
  spread::KernelParams<T> kp;
  std::vector<T> xg, yg, zg;
  std::vector<std::complex<T>> c;

  Workload(int dim, std::int64_t nf, int w, std::size_t M, Dist dist,
           std::uint64_t seed = 17) {
    grid.dim = dim;
    for (int d = 0; d < dim; ++d) grid.nf[d] = nf;
    bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(dim));
    kp = spread::KernelParams<T>::from_width(w);
    Rng rng(seed);
    auto gen = [&](int d) {
      switch (dist) {
        case Dist::Rand: return static_cast<T>(rng.uniform(0, double(grid.nf[d])));
        case Dist::Cluster: return static_cast<T>(rng.uniform(0, 8.0));
        case Dist::Edge:
          // Points hugging both periodic boundaries to exercise wrapping.
          return static_cast<T>(rng.uniform() < 0.5 ? rng.uniform(0, 1.0)
                                                    : rng.uniform(double(grid.nf[d]) - 1,
                                                                  double(grid.nf[d])));
      }
      return T(0);
    };
    xg.resize(M);
    yg.resize(dim >= 2 ? M : 0);
    zg.resize(dim >= 3 ? M : 0);
    c.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      xg[j] = gen(0);
      if (dim >= 2) yg[j] = gen(1);
      if (dim >= 3) zg[j] = gen(2);
      c[j] = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
    }
  }

  spread::NuPoints<T> pts() const {
    return {xg.data(), grid.dim >= 2 ? yg.data() : nullptr,
            grid.dim >= 3 ? zg.data() : nullptr, xg.size()};
  }
};

template <typename T>
std::vector<std::complex<T>> run_method(vgpu::Device& dev, const Workload<T>& wl,
                                        cf::core::Method method, std::uint32_t msub = 1024) {
  std::vector<std::complex<T>> fw(static_cast<std::size_t>(wl.grid.total()), {0, 0});
  if (method == cf::core::Method::GM) {
    spread::spread_gm<T>(dev, wl.grid, wl.kp, wl.pts(), wl.c.data(), fw.data(), nullptr);
    return fw;
  }
  spread::DeviceSort sort;
  spread::bin_sort(dev, wl.grid, wl.bins, wl.xg.data(),
                   wl.grid.dim >= 2 ? wl.yg.data() : nullptr,
                   wl.grid.dim >= 3 ? wl.zg.data() : nullptr, wl.xg.size(), sort);
  if (method == cf::core::Method::GMSort) {
    spread::spread_gm<T>(dev, wl.grid, wl.kp, wl.pts(), wl.c.data(), fw.data(),
                         sort.order.data());
    return fw;
  }
  auto subs = spread::build_subproblems(dev, sort, msub);
  spread::spread_sm<T>(dev, wl.grid, wl.bins, wl.kp, wl.pts(), wl.c.data(), fw.data(),
                       sort, subs, msub);
  return fw;
}

}  // namespace

// ---- parameterized equivalence sweep: dim x distribution x width -----------

using SpreadCase = std::tuple<int, int, int>;  // dim, dist, w

namespace {
std::string spread_case_name(const ::testing::TestParamInfo<SpreadCase>& info) {
  const int dim = std::get<0>(info.param);
  const int dist = std::get<1>(info.param);
  const int w = std::get<2>(info.param);
  const char* dn[] = {"rand", "cluster", "edge"};
  return std::to_string(dim) + "d_" + dn[dist] + "_w" + std::to_string(w);
}
}  // namespace

class SpreadEquivalence : public ::testing::TestWithParam<SpreadCase> {};

TEST_P(SpreadEquivalence, AllMethodsMatchReferenceDouble) {
  const auto [dim, dist_i, w] = GetParam();
  const std::int64_t nf = dim == 3 ? 36 : 128;
  const std::size_t M = 3000;
  Workload<double> wl(dim, nf, w, M, static_cast<Dist>(dist_i));
  vgpu::Device dev(4);
  const auto want = reference_spread(wl.grid, wl.kp, wl.xg, wl.yg, wl.zg, wl.c);
  for (auto m : {cf::core::Method::GM, cf::core::Method::GMSort}) {
    auto got = run_method<double>(dev, wl, m);
    EXPECT_LT(grid_rel_err(got, want), 1e-12) << "method " << int(m);
  }
  if (spread::sm_fits<double>(dev, wl.grid, wl.bins, wl.kp.w)) {
    auto got = run_method<double>(dev, wl, cf::core::Method::SM);
    EXPECT_LT(grid_rel_err(got, want), 1e-12) << "SM";
  }
}

TEST_P(SpreadEquivalence, AllMethodsMatchReferenceSingle) {
  const auto [dim, dist_i, w] = GetParam();
  const std::int64_t nf = dim == 3 ? 36 : 128;
  const std::size_t M = 3000;
  Workload<float> wl(dim, nf, w, M, static_cast<Dist>(dist_i), 99);
  vgpu::Device dev(4);
  const auto want = reference_spread(wl.grid, wl.kp, wl.xg, wl.yg, wl.zg, wl.c);
  for (auto m : {cf::core::Method::GM, cf::core::Method::GMSort}) {
    auto got = run_method<float>(dev, wl, m);
    EXPECT_LT(grid_rel_err(got, want), 2e-5) << "method " << int(m);
  }
  if (spread::sm_fits<float>(dev, wl.grid, wl.bins, wl.kp.w)) {
    auto got = run_method<float>(dev, wl, cf::core::Method::SM);
    EXPECT_LT(grid_rel_err(got, want), 2e-5) << "SM";
  }
}

INSTANTIATE_TEST_SUITE_P(DimsDistsWidths, SpreadEquivalence,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0, 1, 2),
                                            ::testing::Values(2, 6, 9)),
                         spread_case_name);

// ---- targeted edge cases ----------------------------------------------------

TEST(Spread, SinglePointMassConservation) {
  // The grid sum equals c_j * sum of kernel tensor values (all of the mass).
  Workload<double> wl(2, 64, 6, 1, Dist::Rand);
  vgpu::Device dev(2);
  auto fw = run_method<double>(dev, wl, cf::core::Method::GM);
  std::complex<double> total(0, 0);
  for (auto& v : fw) total += v;
  double vals0[spread::kMaxWidth], vals1[spread::kMaxWidth];
  spread::es_values(wl.kp, wl.xg[0], vals0);
  spread::es_values(wl.kp, wl.yg[0], vals1);
  double mass = 0;
  for (int i1 = 0; i1 < wl.kp.w; ++i1)
    for (int i0 = 0; i0 < wl.kp.w; ++i0) mass += vals0[i0] * vals1[i1];
  EXPECT_NEAR(std::abs(total - wl.c[0] * mass), 0.0, 1e-12 * mass);
}

TEST(Spread, WrapAroundPointTouchesBothEnds) {
  // A point at fine coordinate 0.25 must write to indices on both ends.
  spread::GridSpec grid;
  grid.dim = 1;
  grid.nf = {64, 1, 1};
  auto kp = spread::KernelParams<double>::from_width(6);
  std::vector<double> xg = {0.25};
  std::vector<std::complex<double>> c = {{1, 0}};
  std::vector<std::complex<double>> fw(64, {0, 0});
  vgpu::Device dev(1);
  spread::NuPoints<double> pts{xg.data(), nullptr, nullptr, 1};
  spread::spread_gm<double>(dev, grid, kp, pts, c.data(), fw.data(), nullptr);
  EXPECT_GT(std::abs(fw[0]), 0.0);
  EXPECT_GT(std::abs(fw[63]), 0.0);  // wrapped part
  EXPECT_GT(std::abs(fw[2]), 0.0);
  EXPECT_EQ(std::abs(fw[32]), 0.0);  // far away untouched
}

TEST(Spread, ZeroPointsLeavesGridZero) {
  spread::GridSpec grid;
  grid.dim = 2;
  grid.nf = {32, 32, 1};
  auto kp = spread::KernelParams<float>::from_width(4);
  std::vector<std::complex<float>> fw(32 * 32, {0, 0});
  vgpu::Device dev(2);
  spread::NuPoints<float> pts{nullptr, nullptr, nullptr, 0};
  spread::spread_gm<float>(dev, grid, kp, pts, nullptr, fw.data(), nullptr);
  for (auto& v : fw) EXPECT_EQ(v, std::complex<float>(0, 0));
}

TEST(Spread, SmThrowsWhenSharedMemoryExceeded) {
  Workload<double> wl(3, 36, 9, 10, Dist::Rand);  // 3D double w=9 cannot fit
  vgpu::Device dev(2);
  ASSERT_FALSE(spread::sm_fits<double>(dev, wl.grid, wl.bins, wl.kp.w));
  spread::DeviceSort sort;
  spread::bin_sort(dev, wl.grid, wl.bins, wl.xg.data(), wl.yg.data(), wl.zg.data(),
                   wl.xg.size(), sort);
  auto subs = spread::build_subproblems(dev, sort, 1024);
  std::vector<std::complex<double>> fw(static_cast<std::size_t>(wl.grid.total()));
  EXPECT_THROW(spread::spread_sm<double>(dev, wl.grid, wl.bins, wl.kp, wl.pts(),
                                         wl.c.data(), fw.data(), sort, subs, 1024),
               std::runtime_error);
}

TEST(Spread, SmMatchesWithTinyMsub) {
  // Forcing many subproblems per bin must not change the result.
  Workload<double> wl(2, 96, 5, 2000, Dist::Cluster, 5);
  vgpu::Device dev(4);
  const auto want = reference_spread(wl.grid, wl.kp, wl.xg, wl.yg, wl.zg, wl.c);
  for (std::uint32_t msub : {1u, 7u, 64u, 100000u}) {
    auto got = run_method<double>(dev, wl, cf::core::Method::SM, msub);
    EXPECT_LT(grid_rel_err(got, want), 1e-12) << "msub=" << msub;
  }
}

TEST(Spread, LinearInStrengths) {
  Workload<double> wl(2, 64, 6, 500, Dist::Rand);
  vgpu::Device dev(2);
  auto f1 = run_method<double>(dev, wl, cf::core::Method::GMSort);
  Workload<double> wl2 = wl;
  for (auto& v : wl2.c) v *= 2.0;
  auto f2 = run_method<double>(dev, wl2, cf::core::Method::GMSort);
  for (std::size_t i = 0; i < f1.size(); ++i)
    EXPECT_NEAR(std::abs(f2[i] - 2.0 * f1[i]), 0.0, 1e-12);
}

TEST(Spread, CountersShowSmUsesFewerGlobalAtomics) {
  // The SM design goal (paper Sec. III-A): with many points per bin, SM does
  // far fewer global atomic operations than GM.
  Workload<float> wl(2, 128, 6, 20000, Dist::Cluster, 3);
  vgpu::Device dev(4);
  dev.counters.reset();
  (void)run_method<float>(dev, wl, cf::core::Method::GM);
  const auto gm_atomics = dev.counters.global_atomics.load();
  dev.counters.reset();
  (void)run_method<float>(dev, wl, cf::core::Method::SM);
  const auto sm_atomics = dev.counters.global_atomics.load();
  EXPECT_LT(sm_atomics * 5, gm_atomics);  // at least 5x fewer
  EXPECT_GT(dev.counters.shared_ops.load(), 0u);
}

TEST(Spread, WorkerCountDoesNotChangeResultBeyondRounding) {
  // Parallel atomics reassociate sums; across very different worker counts
  // the result must agree to near machine precision.
  Workload<double> wl(2, 96, 6, 4000, Dist::Rand, 21);
  vgpu::Device d1(1), d8(8);
  auto f1 = run_method<double>(d1, wl, cf::core::Method::SM);
  auto f8 = run_method<double>(d8, wl, cf::core::Method::SM);
  EXPECT_LT(grid_rel_err(f8, f1), 1e-13);
}

TEST(Spread, CornerPointIn3dWrapsAllEightOctants) {
  spread::GridSpec grid;
  grid.dim = 3;
  grid.nf = {16, 16, 16};
  auto kp = spread::KernelParams<double>::from_width(4);
  std::vector<double> xg = {0.1}, yg = {0.1}, zg = {0.1};  // near the corner
  std::vector<std::complex<double>> c = {{1, 0}};
  std::vector<std::complex<double>> fw(16 * 16 * 16, {0, 0});
  vgpu::Device dev(1);
  spread::NuPoints<double> pts{xg.data(), yg.data(), zg.data(), 1};
  spread::spread_gm<double>(dev, grid, kp, pts, c.data(), fw.data(), nullptr);
  // Mass must appear in all 8 corner octants of the periodic grid.
  auto val = [&](int i, int j, int k) {
    return std::abs(fw[i + 16 * (j + 16 * k)]);
  };
  EXPECT_GT(val(0, 0, 0), 0.0);
  EXPECT_GT(val(15, 15, 15), 0.0);
  EXPECT_GT(val(0, 15, 0), 0.0);
  EXPECT_GT(val(15, 0, 15), 0.0);
}

TEST(Spread, MirroredPointsGiveMirroredGrid) {
  // Reflecting all points about the domain center mirrors the fine grid.
  spread::GridSpec grid;
  grid.dim = 1;
  grid.nf = {64, 1, 1};
  auto kp = spread::KernelParams<double>::from_width(6);
  Rng rng(22);
  const std::size_t M = 50;
  std::vector<double> xg(M), xr(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    xg[j] = rng.uniform(1.0, 63.0);
    xr[j] = 64.0 - xg[j];  // reflect about grid center
    c[j] = {rng.uniform(-1, 1), 0};
  }
  std::vector<std::complex<double>> fa(64, {0, 0}), fb(64, {0, 0});
  vgpu::Device dev(2);
  spread::NuPoints<double> pa{xg.data(), nullptr, nullptr, M};
  spread::NuPoints<double> pb{xr.data(), nullptr, nullptr, M};
  spread::spread_gm<double>(dev, grid, kp, pa, c.data(), fa.data(), nullptr);
  spread::spread_gm<double>(dev, grid, kp, pb, c.data(), fb.data(), nullptr);
  // fb[l] == fa[(64 - l) % 64] by the even symmetry of the kernel.
  for (int l = 0; l < 64; ++l)
    EXPECT_NEAR(std::abs(fb[(64 - l) % 64] - fa[l]), 0.0, 1e-12) << l;
}

TEST(Spread, HornerTableMatchesDirectEvaluationPointwise) {
  for (int w : {2, 4, 6, 8, 10, 13, 16}) {
    auto kp = spread::KernelParams<double>::from_width(w);
    auto horner = spread::HornerTable<double>(kp);
    auto kph = kp;
    horner.attach(kph);
    // The approximation only needs to sit below the width-w aliasing error
    // ~10^{-(w-1)}; the sqrt cusp at |z|=1 caps what a polynomial can do for
    // tiny widths (w=2 serves tol 1e-1).
    const double bound = std::max(2e-11, 5e-2 * std::pow(10.0, -(w - 1)));
    Rng rng(23 + w);
    double vd[spread::kMaxWidth], vh[spread::kMaxWidth];
    for (int trial = 0; trial < 200; ++trial) {
      const double x = rng.uniform(10.0, 90.0);
      const auto l0d = spread::es_values(kp, x, vd);
      const auto l0h = spread::es_values(kph, x, vh);
      ASSERT_EQ(l0d, l0h);
      for (int i = 0; i < w; ++i)
        EXPECT_NEAR(vh[i], vd[i], bound) << "w=" << w << " i=" << i;
    }
  }
}

// ---- width-specialized fast path vs runtime-width fallback ------------------

template <typename T>
std::vector<std::complex<T>> run_with_params(vgpu::Device& dev, const Workload<T>& wl,
                                             const spread::KernelParams<T>& kp,
                                             cf::core::Method method) {
  std::vector<std::complex<T>> fw(static_cast<std::size_t>(wl.grid.total()), {0, 0});
  if (method == cf::core::Method::GM) {
    spread::spread_gm<T>(dev, wl.grid, kp, wl.pts(), wl.c.data(), fw.data(), nullptr);
    return fw;
  }
  spread::DeviceSort sort;
  spread::bin_sort(dev, wl.grid, wl.bins, wl.xg.data(),
                   wl.grid.dim >= 2 ? wl.yg.data() : nullptr,
                   wl.grid.dim >= 3 ? wl.zg.data() : nullptr, wl.xg.size(), sort);
  if (method == cf::core::Method::GMSort) {
    spread::spread_gm<T>(dev, wl.grid, kp, wl.pts(), wl.c.data(), fw.data(),
                         sort.order.data());
    return fw;
  }
  auto subs = spread::build_subproblems(dev, sort, 1024);
  spread::spread_sm<T>(dev, wl.grid, wl.bins, kp, wl.pts(), wl.c.data(), fw.data(),
                       sort, subs, 1024);
  return fw;
}

TEST(SpreadFastPath, EveryWidthMatchesFallback) {
  // The width-dispatched kernels must reproduce the runtime-w scalar path at
  // every dispatchable width, for all three methods (direct exp/sqrt
  // evaluation, so the per-tap values are identical up to FMA contraction).
  for (int w = 2; w <= spread::kMaxWidth; ++w) {
    Workload<double> wl(2, 96, w, 1500, Dist::Rand, 40 + w);
    vgpu::Device dev(4);
    auto kp_fast = wl.kp;
    auto kp_scalar = wl.kp;
    kp_scalar.fast = false;
    for (auto m : {cf::core::Method::GM, cf::core::Method::GMSort, cf::core::Method::SM}) {
      if (m == cf::core::Method::SM &&
          !spread::sm_fits<double>(dev, wl.grid, wl.bins, w))
        continue;
      auto got = run_with_params<double>(dev, wl, kp_fast, m);
      auto want = run_with_params<double>(dev, wl, kp_scalar, m);
      EXPECT_LT(grid_rel_err(got, want), 1e-12) << "w=" << w << " method=" << int(m);
    }
  }
}

TEST(SpreadFastPath, AllDimsMatchFallback) {
  for (int dim : {1, 2, 3}) {
    for (int w : {3, 6, 8}) {
      Workload<double> wl(dim, dim == 3 ? 36 : 128, w, 2000, Dist::Edge, 60 + w);
      vgpu::Device dev(4);
      auto kp_scalar = wl.kp;
      kp_scalar.fast = false;
      for (auto m : {cf::core::Method::GM, cf::core::Method::SM}) {
        if (m == cf::core::Method::SM &&
            !spread::sm_fits<double>(dev, wl.grid, wl.bins, w))
          continue;
        auto got = run_with_params<double>(dev, wl, wl.kp, m);
        auto want = run_with_params<double>(dev, wl, kp_scalar, m);
        EXPECT_LT(grid_rel_err(got, want), 1e-12)
            << "dim=" << dim << " w=" << w << " method=" << int(m);
      }
    }
  }
}

TEST(SpreadFastPath, HornerFastPathWithinTolOfScalarDirect) {
  // The full fast path (width dispatch + padded Horner table) must match the
  // scalar direct-evaluation path to <= 1e-5 relative error — the accuracy
  // contract of the kerevalmeth=1 pipeline at the benchmark tolerance.
  Workload<float> wl(3, 36, 7, 4000, Dist::Rand, 71);  // w=7 <=> tol 1e-6
  vgpu::Device dev(4);
  auto kp_scalar = wl.kp;
  kp_scalar.fast = false;
  auto kp_horner = wl.kp;
  spread::HornerTable<float> horner(wl.kp);
  horner.attach(kp_horner);
  for (auto m : {cf::core::Method::GMSort, cf::core::Method::SM}) {
    if (m == cf::core::Method::SM && !spread::sm_fits<float>(dev, wl.grid, wl.bins, 7))
      continue;
    auto got = run_with_params<float>(dev, wl, kp_horner, m);
    auto want = run_with_params<float>(dev, wl, kp_scalar, m);
    EXPECT_LT(grid_rel_err(got, want), 1e-5) << "method=" << int(m);
  }
}

// ---- sigma = 1.25 deep-tolerance widths (17..24) ----------------------------

TEST(SpreadFastPath, EveryKernelWidthDispatchesCompileTime) {
  // Every width width_from_tol can select must hit the compile-time fast
  // path — including the sigma = 1.25 range 17..24, which used to fall to
  // the runtime-w scalar fallback; anything outside [2, kMaxWidth] still
  // falls back to it.
  for (int w = 2; w <= spread::kMaxWidth; ++w) {
    int seen = 0;
    EXPECT_TRUE(spread::detail::dispatch_width(w, [&](auto wc) { seen = wc(); }))
        << "w=" << w;
    EXPECT_EQ(seen, w);
  }
  EXPECT_FALSE(spread::detail::dispatch_width(1, [](auto) {}));
  EXPECT_FALSE(spread::detail::dispatch_width(spread::kMaxWidth + 1, [](auto) {}));
}

TEST(SpreadFastPath, Width20PlanBuildsTapsAndMatchesDirect) {
  // sigma = 1.25 at tol 1e-12 selects w = 20 (test_kernel asserts the width
  // rule): the plan must carry that width through the compile-time dispatch,
  // build its plan-resident tap table (point_cache = 2 on the tiled GM-sort
  // engine), and still deliver deep-tolerance accuracy against the direct
  // sum.
  cf::core::Options o;
  o.upsampfac = 1.25;
  o.point_cache = 2;
  o.binsize = {16, 16, 1};
  vgpu::Device dev(2);
  const std::vector<std::int64_t> N{64, 64};
  cf::core::Plan<double> plan(dev, 1, N, +1, 1e-12, o);
  ASSERT_EQ(plan.kernel_width(), 20);

  const std::size_t M = 400, ntot = 64 * 64;
  Rng rng(77);
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  plan.set_points(M, x.data(), y.data(), nullptr);
  std::vector<std::complex<double>> f(ntot), want(ntot);
  plan.execute(c.data(), f.data());

  const auto bd = plan.last_breakdown();
  EXPECT_GE(bd.tap_builds, 1u);
  EXPECT_EQ(bd.tiled, 1);

  cf::ThreadPool pool(4);
  cf::cpu::direct_type1<double>(pool, x, y, {}, c, +1, N, want);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f, want), 1e-9);
}

TEST(Spread, GmSortPermutedOrderSameResultAsUserOrder) {
  // GM and GM-sort differ only in traversal order; sums must agree.
  Workload<float> wl(2, 128, 6, 5000, Dist::Rand, 24);
  vgpu::Device dev(4);
  auto f_gm = run_method<float>(dev, wl, cf::core::Method::GM);
  auto f_sorted = run_method<float>(dev, wl, cf::core::Method::GMSort);
  EXPECT_LT(grid_rel_err(f_sorted, f_gm), 2e-6);
}
