// Tile-owned atomic-free spread writeback (Options::tiled_spread):
//  * bitwise-identical execute output across worker counts {1, 2, hw,
//    $CF_WORKERS} on the tiled path (the whole pipeline is atomic-free and
//    every fine-grid cell has a single owner with a fixed merge order);
//  * zero global atomics across an entire tiled type-1 execute, all-interior
//    and boundary-heavy alike, with the halo-merge counter accounting for the
//    traffic that replaced them;
//  * parity against the atomic writeback at one worker across dims x methods
//    x precisions x B in {1, 3};
//  * graceful fallback: geometries failing the tile gate (padded extent
//    exceeding nf) silently keep the atomic path and stay correct.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "cpu/direct.hpp"
#include "test_env.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

/// Modes sized so the fine grid passes the tile-geometry gate (padded bin
/// extent <= nf per axis) at the suite's tolerances. 1D gets an explicit bin
/// size: the 1024-point default bin always fails the gate on test-sized
/// grids. The low-upsampling grid needs larger modes: sigma = 1.25 shrinks
/// nf while widening the kernel (w = 15 at double 1e-9), so the sigma = 2
/// shapes would fail the gate and silently skip the tiled path.
std::vector<std::int64_t> modes_for(int dim,
                                    double sigma = cf::test::env_upsampfac()) {
  if (dim == 1) return {64};
  if (sigma != 2.0) return dim == 2 ? std::vector<std::int64_t>{40, 40}
                                    : std::vector<std::int64_t>{28, 28, 26};
  if (dim == 2) return {40, 36};
  return {16, 16, 12};
}

core::Options base_opts(int dim, core::Method method, int tiled, int B = 1) {
  core::Options o;
  o.method = method;
  o.tiled_spread = tiled;
  o.fastpath = cf::test::env_fastpath();
  o.upsampfac = cf::test::env_upsampfac();
  o.ntransf = B;
  if (dim == 1) o.binsize = {32, 1, 1};
  return o;
}

template <typename T>
struct Problem {
  std::vector<std::int64_t> N;
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> c;
  std::size_t M;
  std::int64_t ntot;

  /// interior_band > 0 keeps every coordinate at least that many fine-grid
  /// cells away from the periodic edge (all-interior placement).
  Problem(std::vector<std::int64_t> modes, std::size_t M_, int B,
          const std::array<std::int64_t, 3>& nf, int interior_band,
          std::uint64_t seed)
      : N(std::move(modes)), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    if (dim >= 2) y.resize(M);
    if (dim >= 3) z.resize(M);
    auto coord = [&](int d) {
      const double g = rng.uniform(double(interior_band),
                                   double(nf[d] - interior_band));
      return static_cast<T>(2.0 * std::numbers::pi * g / double(nf[d]));
    };
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = coord(0);
      if (dim >= 2) y[j] = coord(1);
      if (dim >= 3) z[j] = coord(2);
    }
    c.resize(static_cast<std::size_t>(B) * M);
    for (auto& v : c)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }

  const T* yp() const { return y.empty() ? nullptr : y.data(); }
  const T* zp() const { return z.empty() ? nullptr : z.data(); }
};

/// One full type-1 execute at the given worker count; returns the mode
/// outputs and reports whether the spread ran tiled and how many global
/// atomics the execute performed.
template <typename T>
std::vector<std::complex<T>> run_type1(std::size_t workers, const Problem<T>& p,
                                       const core::Options& opts, double tol,
                                       int* tiled = nullptr,
                                       std::uint64_t* atomics = nullptr,
                                       core::Breakdown* bd = nullptr) {
  vgpu::Device dev(workers);
  const int B = std::max(1, opts.ntransf);
  core::Plan<T> plan(dev, 1, p.N, +1, tol, opts);
  plan.set_points(p.M, p.x.data(), p.yp(), p.zp());
  std::vector<std::complex<T>> f(static_cast<std::size_t>(B) * p.ntot);
  std::vector<std::complex<T>> c = p.c;
  dev.counters.reset();
  plan.execute(c.data(), f.data());
  if (tiled) *tiled = plan.last_breakdown().tiled;
  if (atomics) *atomics = dev.counters.global_atomics.load();
  if (bd) *bd = plan.last_breakdown();
  return f;
}

std::vector<std::size_t> worker_counts() {
  std::vector<std::size_t> counts{1, 2,
                                  std::max(1u, std::thread::hardware_concurrency())};
  const int env = cf::test::env_int("CF_WORKERS", 0);
  if (env > 0) counts.push_back(static_cast<std::size_t>(env));
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

}  // namespace

// ---- bitwise determinism across worker counts --------------------------------

/// SM is unavailable where the padded bin exceeds shared memory (e.g. 3D
/// double, paper Rmk. 2); those combinations are skipped.
template <typename T>
static bool method_available(const std::vector<std::int64_t>& modes, double tol,
                             const core::Options& opts) {
  vgpu::Device probe(1);
  try {
    core::Plan<T> trial(probe, 1, modes, +1, tol, opts);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

template <typename T>
static void check_bitwise_across_workers(int dim, core::Method method, int B,
                                         double sigma = cf::test::env_upsampfac()) {
  const double tol = std::is_same_v<T, double> ? 1e-9 : 1e-5;
  auto opts = base_opts(dim, method, /*tiled=*/1, B);
  opts.upsampfac = sigma;
  const auto modes = modes_for(dim, sigma);
  if (!method_available<T>(modes, tol, opts)) return;
  vgpu::Device probe(1);
  core::Plan<T> trial(probe, 1, modes, +1, tol, opts);
  Problem<T> p(modes, 3000, B, trial.fine_grid().nf, 0, 7 + dim + B);
  int tiled = 0;
  const auto ref = run_type1<T>(1, p, opts, tol, &tiled);
  ASSERT_EQ(tiled, 1) << "tile engine inactive at dim=" << dim
                      << " method=" << core::method_name(method);
  for (std::size_t wc : worker_counts()) {
    const auto got = run_type1<T>(wc, p, opts, tol);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], ref[i]) << "dim=" << dim << " method="
                                << core::method_name(method) << " workers=" << wc
                                << " B=" << B << " i=" << i;
  }
}

TEST(TiledSpread, BitwiseIdenticalAcrossWorkerCountsF32) {
  for (int dim = 1; dim <= 3; ++dim)
    for (auto m : {core::Method::GMSort, core::Method::SM})
      for (int B : {1, 3}) check_bitwise_across_workers<float>(dim, m, B);
}

TEST(TiledSpread, BitwiseIdenticalAcrossWorkerCountsF64) {
  for (int dim = 1; dim <= 3; ++dim)
    for (auto m : {core::Method::GMSort, core::Method::SM})
      for (int B : {1, 3}) check_bitwise_across_workers<double>(dim, m, B);
}

// ---- low-upsampling grid (sigma = 1.25) --------------------------------------

TEST(TiledSpread, Sigma125BitwiseAcrossWorkerCounts) {
  // The tile-owned writeback is sigma-agnostic: the determinism contract must
  // hold verbatim on the sigma = 1.25 grid (smaller nf, wider kernel — w = 9
  // float / w = 15 double at the suite tolerances). Forced here regardless of
  // CF_UPSAMP so the default ctest run covers both grids.
  for (int dim = 1; dim <= 3; ++dim)
    for (auto m : {core::Method::GMSort, core::Method::SM}) {
      check_bitwise_across_workers<float>(dim, m, 1, 1.25);
      check_bitwise_across_workers<double>(dim, m, 1, 1.25);
    }
}

TEST(TiledSpread, Sigma125ZeroGlobalAtomicsOnTiledExecute) {
  // Zero global atomics is per-sigma part of the contract: the wider sigma =
  // 1.25 halos go through the same shell arena + merge schedule, never
  // through atomics.
  for (int dim = 2; dim <= 3; ++dim) {
    auto opts = base_opts(dim, core::Method::GMSort, /*tiled=*/1);
    opts.upsampfac = 1.25;
    const auto modes = modes_for(dim, 1.25);
    vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
    core::Plan<double> plan(dev, 1, modes, +1, 1e-9, opts);
    Problem<double> p(modes, 2500, 1, plan.fine_grid().nf, 0, 33 + dim);
    plan.set_points(p.M, p.x.data(), p.yp(), p.zp());
    std::vector<std::complex<double>> f(static_cast<std::size_t>(p.ntot));
    auto c = p.c;
    dev.counters.reset();
    plan.execute(c.data(), f.data());
    ASSERT_EQ(plan.last_breakdown().tiled, 1) << "dim=" << dim;
    EXPECT_EQ(dev.counters.global_atomics.load(), 0u) << "dim=" << dim;
    EXPECT_GT(dev.counters.tile_merge_ops.load(), 0u) << "dim=" << dim;
  }
}

// ---- shell-only halo arena ---------------------------------------------------

TEST(TiledSpread, ShellOnlyArenaSmallerThanPaddedTileLayout) {
  // The halo arena stores each tile's SHELL only (padded volume minus the
  // core box phase 1 writes straight to fw). Breakdown::arena_bytes — shell
  // slots plus the per-worker padded accumulation scratch — must therefore
  // undercut the whole-padded-tile layout it replaced, whose size is
  // reconstructed here from the plan's public geometry. Two device workers
  // keep the scratch term small and deterministic. Chunk splitting is pinned
  // off: this test measures the shell layout, and a forced split (e.g. the
  // CI CF_TILE_CHUNK=1 pass) would add chunk planes to arena_bytes.
  // Sigma is pinned to 2: shell < whole-tile is a pad-much-smaller-than-bin
  // regime claim, and the sigma = 1.25 widths push the pad past half the bin
  // on test-sized grids (the dedicated Sigma125 suites cover that regime).
  for (int dim = 2; dim <= 3; ++dim) {
    auto opts = base_opts(dim, core::Method::GMSort, /*tiled=*/1);
    opts.tile_chunk_cap = -1;
    opts.upsampfac = 2.0;
    vgpu::Device dev(2);
    core::Plan<float> plan(dev, 1, modes_for(dim, 2.0), +1, 1e-5, opts);
    Problem<float> p(modes_for(dim, 2.0), 4000, 1, plan.fine_grid().nf, 0,
                     77 + dim);
    plan.set_points(p.M, p.x.data(), p.yp(), p.zp());
    const auto bd = plan.last_breakdown();
    ASSERT_GT(bd.tiles_active, 0u) << "dim=" << dim;
    ASSERT_GT(bd.arena_bytes, 0u) << "dim=" << dim;

    const int w = plan.kernel_width();
    const int pad = (w + 1) / 2;
    const auto bins = cf::spread::BinSpec::make(
        plan.fine_grid(), cf::spread::BinSpec::default_size(dim));
    std::size_t padded = 1;
    for (int d = 0; d < dim; ++d)
      padded *= static_cast<std::size_t>(bins.m[d] + 2 * pad);
    const std::size_t plane = padded + static_cast<std::size_t>(
                                           cf::spread::pad_width(w) - w);
    const std::size_t whole_tile_layout =
        bd.tiles_active * plane * 2 * sizeof(float);
    EXPECT_LT(bd.arena_bytes, whole_tile_layout) << "dim=" << dim;

    // The slimmer arena must not change behavior: still tiled, still exact.
    std::vector<std::complex<float>> f(static_cast<std::size_t>(p.ntot));
    auto c = p.c;
    dev.counters.reset();
    plan.execute(c.data(), f.data());
    EXPECT_EQ(plan.last_breakdown().tiled, 1);
    EXPECT_EQ(dev.counters.global_atomics.load(), 0u);
  }
}

// ---- atomic elision ----------------------------------------------------------

TEST(TiledSpread, ZeroGlobalAtomicsOnTiledExecute) {
  // An all-interior point set (the counter claim of the issue) and an
  // unconstrained one: the tiled execute must perform ZERO global atomics
  // either way — spread is tile-owned, FFT and deconvolve never use atomics —
  // while the halo-merge counter shows the plain adds that replaced them.
  for (int dim = 2; dim <= 3; ++dim) {
    for (auto method : {core::Method::GMSort, core::Method::SM}) {
      for (int band : {0, 8}) {
        const auto opts = base_opts(dim, method, 1);
        // SM can't fit the padded bin everywhere (3D float at sigma = 1.25
        // exceeds shared memory); skip before the trial plan would throw.
        if (!method_available<float>(modes_for(dim), 1e-5, opts)) continue;
        vgpu::Device probe(1);
        core::Plan<float> trial(probe, 1, modes_for(dim), +1, 1e-5, opts);
        Problem<float> p(modes_for(dim), 2500, 1, trial.fine_grid().nf, band,
                         21 + dim + band);
        int tiled = 0;
        std::uint64_t atomics = ~0ull;
        vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
        core::Plan<float> plan(dev, 1, p.N, +1, 1e-5, opts);
        plan.set_points(p.M, p.x.data(), p.yp(), p.zp());
        std::vector<std::complex<float>> f(static_cast<std::size_t>(p.ntot));
        auto c = p.c;
        dev.counters.reset();
        plan.execute(c.data(), f.data());
        tiled = plan.last_breakdown().tiled;
        atomics = dev.counters.global_atomics.load();
        ASSERT_EQ(tiled, 1) << "dim=" << dim;
        EXPECT_EQ(atomics, 0u)
            << "dim=" << dim << " method=" << core::method_name(method)
            << " band=" << band;
        EXPECT_GT(dev.counters.tile_merge_ops.load(), 0u);
      }
    }
  }
}

TEST(TiledSpread, AtomicBaselineStillCountsAtomics) {
  // Sanity check of the ablation axis: the same problem with tiled_spread = 0
  // goes back to atomic writeback and the counter sees it.
  const auto opts = base_opts(2, core::Method::GMSort, /*tiled=*/0);
  vgpu::Device probe(1);
  core::Plan<float> trial(probe, 1, modes_for(2), +1, 1e-5, opts);
  Problem<float> p(modes_for(2), 1500, 1, trial.fine_grid().nf, 0, 31);
  int tiled = -1;
  std::uint64_t atomics = 0;
  run_type1<float>(1, p, opts, 1e-5, &tiled, &atomics);
  EXPECT_EQ(tiled, 0);
  EXPECT_GT(atomics, 0u);
}

// ---- parity vs the atomic writeback ------------------------------------------

template <typename T>
static void check_parity(int dim, core::Method method, int B) {
  const double tol = std::is_same_v<T, double> ? 1e-9 : 1e-5;
  // The double parity floor widens off the sigma = 2 grid: the w = 15 kernel
  // sums ~2x more taps per point, so summation-order noise between the tiled
  // and atomic writebacks lands near 1e-10 (measured 7.8e-11 at 3D GM-sort).
  const double lim = std::is_same_v<T, double>
                         ? (cf::test::env_upsampfac() == 2.0 ? 1e-11 : 1e-9)
                         : 1e-4;
  auto topts = base_opts(dim, method, 1, B);
  auto aopts = base_opts(dim, method, 0, B);
  if (!method_available<T>(modes_for(dim), tol, topts)) return;
  vgpu::Device probe(1);
  core::Plan<T> trial(probe, 1, modes_for(dim), +1, tol, topts);
  Problem<T> p(modes_for(dim), 2200, B, trial.fine_grid().nf, 0, 41 + dim + B);
  int tiled = 0;
  const auto got = run_type1<T>(1, p, topts, tol, &tiled);
  ASSERT_EQ(tiled, 1) << "dim=" << dim << " method=" << core::method_name(method);
  const auto want = run_type1<T>(1, p, aopts, tol, &tiled);
  ASSERT_EQ(tiled, 0);
  EXPECT_LT(cf::cpu::rel_l2_error<T>(got, want), lim)
      << "dim=" << dim << " method=" << core::method_name(method) << " B=" << B;
}

TEST(TiledSpread, ParityVsAtomicWritebackOneWorker) {
  for (int dim = 1; dim <= 3; ++dim)
    for (auto m : {core::Method::GMSort, core::Method::SM})
      for (int B : {1, 3}) {
        check_parity<float>(dim, m, B);
        check_parity<double>(dim, m, B);
      }
}

// ---- accuracy against the exact NUDFT ----------------------------------------

TEST(TiledSpread, TiledExecuteMatchesDirect) {
  for (int dim = 2; dim <= 3; ++dim) {
    const auto opts = base_opts(dim, core::Method::GMSort, 1);
    vgpu::Device probe(1);
    core::Plan<double> trial(probe, 1, modes_for(dim), +1, 1e-9, opts);
    Problem<double> p(modes_for(dim), 1200, 1, trial.fine_grid().nf, 0, 51 + dim);
    int tiled = 0;
    const auto f = run_type1<double>(2, p, opts, 1e-9, &tiled);
    ASSERT_EQ(tiled, 1);
    cf::ThreadPool pool(2);
    std::vector<std::complex<double>> want(static_cast<std::size_t>(p.ntot));
    cf::cpu::direct_type1<double>(pool, p.x, p.y, p.z, p.c, +1, p.N, want);
    EXPECT_LT(cf::cpu::rel_l2_error<double>(f, want), 1e-8) << "dim=" << dim;
  }
}

// ---- re-set_points to M = 0 leaves no stale decomposition --------------------

TEST(TiledSpread, ReSetPointsToZeroIsClean) {
  // A used plan re-pointed at an empty set must not retain the previous
  // subproblem/tile decomposition; execute must produce zeros, on both
  // writebacks.
  for (int tiled : {0, 1}) {
    for (auto method : {core::Method::GMSort, core::Method::SM}) {
      const auto opts = base_opts(2, method, tiled);
      vgpu::Device dev(2);
      core::Plan<float> plan(dev, 1, modes_for(2), +1, 1e-5, opts);
      Problem<float> p(modes_for(2), 2000, 1, plan.fine_grid().nf, 0, 71);
      plan.set_points(p.M, p.x.data(), p.yp(), p.zp());
      std::vector<std::complex<float>> f(static_cast<std::size_t>(p.ntot));
      auto c = p.c;
      plan.execute(c.data(), f.data());
      plan.set_points(0, p.x.data(), p.yp(), p.zp());
      plan.execute(c.data(), f.data());
      for (const auto& v : f)
        ASSERT_EQ(v, std::complex<float>(0, 0))
            << core::method_name(method) << " tiled=" << tiled;
    }
  }
}

// ---- fallback on gate failure ------------------------------------------------

TEST(TiledSpread, GateFailureFallsBackToAtomicsAndStaysCorrect) {
  // Tiny grid: the padded bin extent exceeds nf, so the tile engine must
  // decline (Breakdown::tiled == 0) and the atomic path must still be exact.
  core::Options opts;
  opts.method = core::Method::GMSort;
  opts.fastpath = cf::test::env_fastpath();
  std::vector<std::int64_t> N{10, 12};
  vgpu::Device dev(2);
  core::Plan<double> plan(dev, 1, N, +1, 1e-9, opts);
  Rng rng(61);
  const std::size_t M = 500;
  std::vector<double> x(M), y(M);
  std::vector<std::complex<double>> c(M);
  for (std::size_t j = 0; j < M; ++j) {
    x[j] = rng.angle();
    y[j] = rng.angle();
    c[j] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  plan.set_points(M, x.data(), y.data(), nullptr);
  std::vector<std::complex<double>> f(10 * 12);
  plan.execute(c.data(), f.data());
  EXPECT_EQ(plan.last_breakdown().tiled, 0);
  cf::ThreadPool pool(2);
  std::vector<std::complex<double>> want(10 * 12);
  cf::cpu::direct_type1<double>(pool, x, y, {}, c, +1, N, want);
  EXPECT_LT(cf::cpu::rel_l2_error<double>(f, want), 1e-8);
}

// ---- adversarial clustered distributions (chunked scheduler) -----------------

namespace {

/// Clustered coordinate layouts that defeat a per-tile schedule: kind 0 puts
/// every point inside one bin-sized box, kind 1 drops one tight clump per
/// periodic corner (halo-heavy), kind 2 draws power-law bin populations
/// (coordinate ~ nf * u^4). Strengths come from the base Problem.
template <typename T>
Problem<T> cluster_problem(int dim, int kind, std::size_t M,
                           const std::array<std::int64_t, 3>& nf,
                           std::uint64_t seed) {
  Problem<T> p(modes_for(dim), M, 1, nf, 0, seed);
  Rng rng(seed * 2 + 1);
  for (std::size_t j = 0; j < M; ++j) {
    double g[3] = {0, 0, 0};
    for (int d = 0; d < dim; ++d) {
      if (kind == 0) {
        g[d] = 0.3 * double(nf[d]) + rng.uniform(0, 1);
      } else if (kind == 1) {
        const bool hi = (j % (std::size_t(1) << dim)) >> d & 1;
        g[d] = (hi ? double(nf[d]) - 1.5 : 1.5) + rng.uniform(-1, 1);
      } else {
        const double u = rng.uniform(0, 1);
        g[d] = double(nf[d] - 1) * u * u * u * u;
      }
    }
    p.x[j] = static_cast<T>(2.0 * std::numbers::pi * g[0] / double(nf[0]));
    if (dim >= 2) p.y[j] = static_cast<T>(2.0 * std::numbers::pi * g[1] / double(nf[1]));
    if (dim >= 3) p.z[j] = static_cast<T>(2.0 * std::numbers::pi * g[2] / double(nf[2]));
  }
  return p;
}

/// For every chunk cap in {1 (max splitting, budget-clamped), 0 (auto), -1
/// (never split — PR-5's per-tile schedule)}: still tiled, still zero global
/// atomics, output bitwise-identical at every worker count; at cap = 1 the
/// split must actually engage (more work items than tiles). Different caps
/// re-associate the per-tile sums, so across caps only tolerance-level
/// agreement is required.
template <typename T>
void check_cluster(int dim, int kind) {
  const double tol = std::is_same_v<T, double> ? 1e-9 : 1e-5;
  const auto opts0 = base_opts(dim, core::Method::GMSort, /*tiled=*/1);
  if (!method_available<T>(modes_for(dim), tol, opts0)) return;
  vgpu::Device probe(1);
  core::Plan<T> trial(probe, 1, modes_for(dim), +1, tol, opts0);
  const auto p =
      cluster_problem<T>(dim, kind, 2000, trial.fine_grid().nf, 91 + dim * 7 + kind);

  std::vector<std::vector<std::complex<T>>> per_cap;
  for (int cap : {1, 0, -1}) {
    auto opts = opts0;
    opts.tile_chunk_cap = cap;
    int tiled = 0;
    std::uint64_t atomics = ~std::uint64_t(0);
    core::Breakdown bd{};
    const auto ref = run_type1<T>(1, p, opts, tol, &tiled, &atomics, &bd);
    ASSERT_EQ(tiled, 1) << "dim=" << dim << " kind=" << kind << " cap=" << cap;
    EXPECT_EQ(atomics, 0u) << "dim=" << dim << " kind=" << kind << " cap=" << cap;
    ASSERT_GT(bd.tiles_active, 0u);
    EXPECT_GT(bd.max_tile_points, 0u);
    // cap = 1 requests maximal splitting; the chunk-plane budget may clamp the
    // applied cap upward, but clustered bins must still split into more work
    // items than tiles. cap = -1 must reproduce the unsplit schedule exactly.
    if (cap == 1)
      EXPECT_GT(bd.tile_chunks, bd.tiles_active)
          << "split did not engage at dim=" << dim << " kind=" << kind;
    if (cap == -1) EXPECT_EQ(bd.tile_chunks, bd.tiles_active);
    for (std::size_t wc : worker_counts()) {
      const auto got = run_type1<T>(wc, p, opts, tol);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], ref[i]) << "dim=" << dim << " kind=" << kind
                                  << " cap=" << cap << " workers=" << wc << " i=" << i;
    }
    per_cap.push_back(ref);
  }
  EXPECT_LT(cf::cpu::rel_l2_error<T>(per_cap[0], per_cap[2]), 100 * tol)
      << "caps disagree beyond rounding at dim=" << dim << " kind=" << kind;
  EXPECT_LT(cf::cpu::rel_l2_error<T>(per_cap[1], per_cap[2]), 100 * tol)
      << "caps disagree beyond rounding at dim=" << dim << " kind=" << kind;
}

}  // namespace

TEST(TiledSpread, ClusteredChunkingBitwiseF32) {
  for (int dim = 1; dim <= 3; ++dim)
    for (int kind = 0; kind <= 2; ++kind) check_cluster<float>(dim, kind);
}

TEST(TiledSpread, ClusteredChunkingBitwiseF64) {
  for (int dim = 1; dim <= 3; ++dim)
    for (int kind = 0; kind <= 2; ++kind) check_cluster<double>(dim, kind);
}
