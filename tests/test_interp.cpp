// Interpolation correctness (type-2 step 3): GM and GM-sort must match a
// serial reference gather, and interpolation must be the adjoint of spreading.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/es_kernel.hpp"
#include "spreadinterp/grid.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/device.hpp"

namespace spread = cf::spread;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

template <typename T>
struct InterpFixture {
  spread::GridSpec grid;
  spread::BinSpec bins;
  spread::KernelParams<T> kp;
  std::vector<T> xg, yg, zg;
  std::vector<std::complex<T>> fw;

  InterpFixture(int dim, std::int64_t nf, int w, std::size_t M, std::uint64_t seed = 21) {
    grid.dim = dim;
    for (int d = 0; d < dim; ++d) grid.nf[d] = nf;
    bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(dim));
    kp = spread::KernelParams<T>::from_width(w);
    Rng rng(seed);
    xg.resize(M);
    yg.resize(dim >= 2 ? M : 0);
    zg.resize(dim >= 3 ? M : 0);
    for (std::size_t j = 0; j < M; ++j) {
      xg[j] = static_cast<T>(rng.uniform(0, double(grid.nf[0])));
      if (dim >= 2) yg[j] = static_cast<T>(rng.uniform(0, double(grid.nf[1])));
      if (dim >= 3) zg[j] = static_cast<T>(rng.uniform(0, double(grid.nf[2])));
    }
    fw.resize(static_cast<std::size_t>(grid.total()));
    for (auto& v : fw)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }

  spread::NuPoints<T> pts() const {
    return {xg.data(), grid.dim >= 2 ? yg.data() : nullptr,
            grid.dim >= 3 ? zg.data() : nullptr, xg.size()};
  }

  /// Serial reference gather in double.
  std::vector<std::complex<T>> reference() const {
    const int dim = grid.dim;
    std::vector<std::complex<T>> out(xg.size());
    for (std::size_t j = 0; j < xg.size(); ++j) {
      T vals[3][spread::kMaxWidth];
      std::int64_t idx[3][spread::kMaxWidth];
      const T px[3] = {xg[j], dim >= 2 ? yg[j] : T(0), dim >= 3 ? zg[j] : T(0)};
      for (int d = 0; d < dim; ++d) {
        const std::int64_t l0 = spread::es_values(kp, px[d], vals[d]);
        for (int i = 0; i < kp.w; ++i) idx[d][i] = spread::wrap_index(l0 + i, grid.nf[d]);
      }
      std::complex<double> acc(0, 0);
      const int w1 = dim >= 2 ? kp.w : 1, w2 = dim >= 3 ? kp.w : 1;
      for (int i2 = 0; i2 < w2; ++i2)
        for (int i1 = 0; i1 < w1; ++i1)
          for (int i0 = 0; i0 < kp.w; ++i0) {
            double v = double(vals[0][i0]);
            if (dim >= 2) v *= double(vals[1][i1]);
            if (dim >= 3) v *= double(vals[2][i2]);
            const std::int64_t lin =
                idx[0][i0] +
                grid.nf[0] * ((dim >= 2 ? idx[1][i1] : 0) +
                              grid.nf[1] * (dim >= 3 ? idx[2][i2] : 0));
            const auto& g = fw[static_cast<std::size_t>(lin)];
            acc += std::complex<double>(g.real(), g.imag()) * v;
          }
      out[j] = {static_cast<T>(acc.real()), static_cast<T>(acc.imag())};
    }
    return out;
  }
};

}  // namespace

class InterpDims : public ::testing::TestWithParam<int> {};

TEST_P(InterpDims, GmMatchesReference) {
  const int dim = GetParam();
  InterpFixture<double> f(dim, dim == 3 ? 30 : 128, 6, 2000);
  vgpu::Device dev(4);
  std::vector<std::complex<double>> c(f.xg.size());
  spread::interp<double>(dev, f.grid, f.kp, f.pts(), f.fw.data(), c.data(), nullptr);
  auto want = f.reference();
  for (std::size_t j = 0; j < c.size(); ++j)
    EXPECT_NEAR(std::abs(c[j] - want[j]), 0.0, 1e-12) << j;
}

TEST_P(InterpDims, GmSortMatchesGm) {
  const int dim = GetParam();
  InterpFixture<float> f(dim, dim == 3 ? 30 : 128, 5, 3000, 77);
  vgpu::Device dev(4);
  std::vector<std::complex<float>> c_gm(f.xg.size()), c_sorted(f.xg.size());
  spread::interp<float>(dev, f.grid, f.kp, f.pts(), f.fw.data(), c_gm.data(), nullptr);
  spread::DeviceSort sort;
  spread::bin_sort(dev, f.grid, f.bins, f.xg.data(),
                   dim >= 2 ? f.yg.data() : nullptr, dim >= 3 ? f.zg.data() : nullptr,
                   f.xg.size(), sort);
  spread::interp<float>(dev, f.grid, f.kp, f.pts(), f.fw.data(), c_sorted.data(),
                        sort.order.data());
  // Identical results (each point's gather is an independent deterministic
  // sum; only scheduling differs).
  for (std::size_t j = 0; j < c_gm.size(); ++j) EXPECT_EQ(c_gm[j], c_sorted[j]) << j;
}

INSTANTIATE_TEST_SUITE_P(Dims, InterpDims, ::testing::Values(1, 2, 3));

TEST(Interp, AdjointOfSpread) {
  // <interp(fw), c>_M == <fw, spread(c)>_grid for random fw, c — the defining
  // property linking type-1 and type-2 (paper: "type 2 is the adjoint").
  const int dim = 2;
  InterpFixture<double> f(dim, 64, 6, 500, 31);
  vgpu::Device dev(4);
  Rng rng(32);
  std::vector<std::complex<double>> c(f.xg.size());
  for (auto& v : c) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};

  // interp: u_j = sum_l fw_l psi(l - x_j)
  std::vector<std::complex<double>> u(f.xg.size());
  spread::interp<double>(dev, f.grid, f.kp, f.pts(), f.fw.data(), u.data(), nullptr);
  // spread: g_l = sum_j c_j psi(l - x_j)
  std::vector<std::complex<double>> g(static_cast<std::size_t>(f.grid.total()), {0, 0});
  spread::spread_gm<double>(dev, f.grid, f.kp, f.pts(), c.data(), g.data(), nullptr);

  std::complex<double> lhs(0, 0), rhs(0, 0);
  for (std::size_t j = 0; j < u.size(); ++j) lhs += u[j] * std::conj(c[j]);
  for (std::size_t l = 0; l < g.size(); ++l) rhs += f.fw[l] * std::conj(g[l]);
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-9 * std::abs(lhs));
}

TEST(Interp, WrapAroundGather) {
  spread::GridSpec grid;
  grid.dim = 1;
  grid.nf = {32, 1, 1};
  auto kp = spread::KernelParams<double>::from_width(6);
  std::vector<std::complex<double>> fw(32, {0, 0});
  fw[31] = {1, 0};  // value only at the last grid point
  std::vector<double> xg = {0.5};  // kernel support reaches indices 30,31 via wrap
  std::vector<std::complex<double>> c(1);
  vgpu::Device dev(1);
  spread::NuPoints<double> pts{xg.data(), nullptr, nullptr, 1};
  spread::interp<double>(dev, grid, kp, pts, fw.data(), c.data(), nullptr);
  // Weight of index 31 at distance 1.5h: phi((31-32.5)*2/w).
  const double want = spread::es_eval((31.0 - 32.5) * kp.inv_half_w, kp.beta);
  EXPECT_NEAR(c[0].real(), want, 1e-13);
  EXPECT_NEAR(c[0].imag(), 0.0, 1e-13);
}

TEST(Interp, ConstantGridGivesKernelSum) {
  // fw == 1 everywhere => c_j = (sum_i phi_i)^dim for every point.
  InterpFixture<double> f(2, 48, 6, 100, 41);
  for (auto& v : f.fw) v = {1, 0};
  vgpu::Device dev(2);
  std::vector<std::complex<double>> c(f.xg.size());
  spread::interp<double>(dev, f.grid, f.kp, f.pts(), f.fw.data(), c.data(), nullptr);
  for (std::size_t j = 0; j < c.size(); ++j) {
    double vx[spread::kMaxWidth], vy[spread::kMaxWidth];
    spread::es_values(f.kp, f.xg[j], vx);
    spread::es_values(f.kp, f.yg[j], vy);
    double sx = 0, sy = 0;
    for (int i = 0; i < f.kp.w; ++i) {
      sx += vx[i];
      sy += vy[i];
    }
    EXPECT_NEAR(c[j].real(), sx * sy, 1e-11 * sx * sy);
  }
}

TEST(Interp, SmVariantMatchesGmSort) {
  // interp_sm (shared-memory staging) must agree exactly in result with the
  // plain sorted gather, across dims and distributions.
  for (int dim : {1, 2, 3}) {
    InterpFixture<double> f(dim, dim == 3 ? 32 : 128, 6, 3000, 500 + dim);
    vgpu::Device dev(4);
    spread::DeviceSort sort;
    spread::bin_sort<double>(dev, f.grid, f.bins, f.xg.data(),
                             dim >= 2 ? f.yg.data() : nullptr,
                             dim >= 3 ? f.zg.data() : nullptr, f.xg.size(), sort);
    auto subs = spread::build_subproblems(dev, sort, 1024);
    std::vector<std::complex<double>> c_ref(f.xg.size()), c_sm(f.xg.size());
    spread::interp<double>(dev, f.grid, f.kp, f.pts(), f.fw.data(), c_ref.data(),
                           sort.order.data());
    if (!spread::sm_fits<double>(dev, f.grid, f.bins, f.kp.w)) continue;
    spread::interp_sm<double>(dev, f.grid, f.bins, f.kp, f.pts(), f.fw.data(),
                              c_sm.data(), sort, subs, 1024);
    for (std::size_t j = 0; j < c_ref.size(); ++j)
      EXPECT_NEAR(std::abs(c_sm[j] - c_ref[j]), 0.0, 1e-13) << "dim=" << dim << " " << j;
  }
}

TEST(InterpFastPath, EveryWidthMatchesFallback) {
  // Width-dispatched gather vs runtime-w scalar gather, every width. Both
  // paths sum identical tap values; ordering/contraction differences stay at
  // rounding level.
  for (int w = 2; w <= spread::kMaxWidth; ++w) {
    InterpFixture<double> f(2, 96, w, 1500, 800 + w);
    vgpu::Device dev(4);
    auto kp_scalar = f.kp;
    kp_scalar.fast = false;
    std::vector<std::complex<double>> c_fast(f.xg.size()), c_scalar(f.xg.size());
    spread::interp<double>(dev, f.grid, f.kp, f.pts(), f.fw.data(), c_fast.data(),
                           nullptr);
    spread::interp<double>(dev, f.grid, kp_scalar, f.pts(), f.fw.data(),
                           c_scalar.data(), nullptr);
    for (std::size_t j = 0; j < c_fast.size(); ++j)
      EXPECT_NEAR(std::abs(c_fast[j] - c_scalar[j]), 0.0,
                  1e-12 * (1 + std::abs(c_scalar[j])))
          << "w=" << w << " j=" << j;
  }
}

TEST(InterpFastPath, SmEveryDimMatchesFallback) {
  for (int dim : {1, 2, 3}) {
    InterpFixture<double> f(dim, dim == 3 ? 32 : 128, 6, 2000, 900 + dim);
    vgpu::Device dev(4);
    if (!spread::sm_fits<double>(dev, f.grid, f.bins, f.kp.w)) continue;
    spread::DeviceSort sort;
    spread::bin_sort<double>(dev, f.grid, f.bins, f.xg.data(),
                             dim >= 2 ? f.yg.data() : nullptr,
                             dim >= 3 ? f.zg.data() : nullptr, f.xg.size(), sort);
    auto subs = spread::build_subproblems(dev, sort, 1024);
    auto kp_scalar = f.kp;
    kp_scalar.fast = false;
    std::vector<std::complex<double>> c_fast(f.xg.size()), c_scalar(f.xg.size());
    spread::interp_sm<double>(dev, f.grid, f.bins, f.kp, f.pts(), f.fw.data(),
                              c_fast.data(), sort, subs, 1024);
    spread::interp_sm<double>(dev, f.grid, f.bins, kp_scalar, f.pts(), f.fw.data(),
                              c_scalar.data(), sort, subs, 1024);
    for (std::size_t j = 0; j < c_fast.size(); ++j)
      EXPECT_NEAR(std::abs(c_fast[j] - c_scalar[j]), 0.0,
                  1e-12 * (1 + std::abs(c_scalar[j])))
          << "dim=" << dim << " j=" << j;
  }
}

TEST(InterpFastPath, HornerWithinTolOfScalarDirect) {
  InterpFixture<float> f(2, 128, 7, 3000, 950);
  vgpu::Device dev(4);
  auto kp_scalar = f.kp;
  kp_scalar.fast = false;
  auto kp_horner = f.kp;
  spread::HornerTable<float> horner(f.kp);
  horner.attach(kp_horner);
  std::vector<std::complex<float>> c_fast(f.xg.size()), c_scalar(f.xg.size());
  spread::interp<float>(dev, f.grid, kp_horner, f.pts(), f.fw.data(), c_fast.data(),
                        nullptr);
  spread::interp<float>(dev, f.grid, kp_scalar, f.pts(), f.fw.data(), c_scalar.data(),
                        nullptr);
  double num = 0, den = 0;
  for (std::size_t j = 0; j < c_fast.size(); ++j) {
    num += std::norm(std::complex<double>(c_fast[j] - c_scalar[j]));
    den += std::norm(std::complex<double>(c_scalar[j]));
  }
  EXPECT_LT(std::sqrt(num / den), 1e-5);
}

TEST(Interp, SmVariantThrowsWhenSharedExceeded) {
  InterpFixture<double> f(3, 32, 9, 10, 600);
  vgpu::Device dev(2);
  ASSERT_FALSE(spread::sm_fits<double>(dev, f.grid, f.bins, f.kp.w));
  spread::DeviceSort sort;
  spread::bin_sort<double>(dev, f.grid, f.bins, f.xg.data(), f.yg.data(), f.zg.data(),
                           f.xg.size(), sort);
  auto subs = spread::build_subproblems(dev, sort, 1024);
  std::vector<std::complex<double>> c(f.xg.size());
  EXPECT_THROW(spread::interp_sm<double>(dev, f.grid, f.bins, f.kp, f.pts(), f.fw.data(),
                                         c.data(), sort, subs, 1024),
               std::runtime_error);
}

TEST(Interp, SmVariantWithTinyMsub) {
  InterpFixture<float> f(2, 96, 5, 2000, 700);
  vgpu::Device dev(4);
  spread::DeviceSort sort;
  spread::bin_sort<float>(dev, f.grid, f.bins, f.xg.data(), f.yg.data(), nullptr,
                          f.xg.size(), sort);
  std::vector<std::complex<float>> c_ref(f.xg.size());
  spread::interp<float>(dev, f.grid, f.kp, f.pts(), f.fw.data(), c_ref.data(),
                        sort.order.data());
  for (std::uint32_t msub : {1u, 16u, 100000u}) {
    auto subs = spread::build_subproblems(dev, sort, msub);
    std::vector<std::complex<float>> c_sm(f.xg.size());
    spread::interp_sm<float>(dev, f.grid, f.bins, f.kp, f.pts(), f.fw.data(), c_sm.data(),
                             sort, subs, msub);
    // The staged and unstaged gathers sum identical values, but the two
    // width-specialized kernels may contract FMAs differently — agreement is
    // to rounding, not bitwise.
    for (std::size_t j = 0; j < c_ref.size(); ++j)
      EXPECT_NEAR(std::abs(c_sm[j] - c_ref[j]), 0.0f,
                  2e-6f * (1 + std::abs(c_ref[j])))
          << "msub=" << msub << " j=" << j;
  }
}
