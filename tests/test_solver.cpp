// Inverse NUFFT solver: exact recovery in well-posed regimes, convergence
// behavior, weighting, damping, and misuse handling.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "solver/inverse.hpp"
#include "vgpu/device.hpp"

namespace solver = cf::solver;
using cf::Rng;

namespace {

/// Builds a well-posed problem: modes f_true on an N grid, M >> N samples at
/// random locations, y = A f_true evaluated with a high-accuracy plan.
template <typename T>
struct InvProblem {
  std::vector<std::int64_t> N;
  std::size_t M;
  std::vector<T> x, y;
  std::vector<std::complex<T>> f_true, samples;

  InvProblem(std::vector<std::int64_t> modes, std::size_t M_, cf::vgpu::Device& dev,
             std::uint64_t seed = 5)
      : N(std::move(modes)), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    std::int64_t ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    if (dim >= 2) y.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = static_cast<T>(rng.angle());
      if (dim >= 2) y[j] = static_cast<T>(rng.angle());
    }
    f_true.resize(static_cast<std::size_t>(ntot));
    for (auto& v : f_true)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
    cf::core::Plan<T> fwd(dev, 2, N, +1, 1e-12);
    fwd.set_points(M, x.data(), dim >= 2 ? y.data() : nullptr, nullptr);
    samples.resize(M);
    auto ft = f_true;
    fwd.execute(samples.data(), ft.data());
  }

  double recovery_error(const std::vector<std::complex<T>>& f) const {
    double num = 0, den = 0;
    for (std::size_t i = 0; i < f.size(); ++i) {
      num += std::norm(f[i] - f_true[i]);
      den += std::norm(f_true[i]);
    }
    return std::sqrt(num / den);
  }
};

}  // namespace

TEST(InverseNufft, RecoversModes1d) {
  cf::vgpu::Device dev(4);
  InvProblem<double> p({48}, 3000, dev, 11);
  solver::InverseOptions opts;
  opts.max_iters = 60;
  opts.tol = 1e-10;
  opts.nufft_tol = 1e-11;
  solver::InverseNufft<double> inv(dev, p.N, +1, opts);
  inv.set_points(p.M, p.x.data(), nullptr, nullptr);
  std::vector<std::complex<double>> f(p.f_true.size(), {0, 0});
  const auto rep = inv.solve(p.samples.data(), f.data());
  EXPECT_LT(rep.rel_residual, 1e-9);
  EXPECT_LT(p.recovery_error(f), 1e-7);
}

TEST(InverseNufft, RecoversModes2d) {
  cf::vgpu::Device dev(4);
  InvProblem<double> p({16, 14}, 4000, dev, 12);
  solver::InverseOptions opts;
  opts.max_iters = 80;
  opts.tol = 1e-10;
  opts.nufft_tol = 1e-11;
  solver::InverseNufft<double> inv(dev, p.N, +1, opts);
  inv.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> f(p.f_true.size(), {0, 0});
  const auto rep = inv.solve(p.samples.data(), f.data());
  EXPECT_LT(p.recovery_error(f), 1e-6) << "residual " << rep.rel_residual;
}

TEST(InverseNufft, ResidualHistoryIsMonotoneOverall) {
  cf::vgpu::Device dev(4);
  InvProblem<double> p({20, 20}, 5000, dev, 13);
  solver::InverseOptions opts;
  opts.max_iters = 25;
  opts.tol = 1e-12;
  solver::InverseNufft<double> inv(dev, p.N, +1, opts);
  inv.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> f(p.f_true.size(), {0, 0});
  const auto rep = inv.solve(p.samples.data(), f.data());
  ASSERT_GE(rep.history.size(), 3u);
  // CG residuals can wiggle locally but the envelope must fall strongly.
  EXPECT_LT(rep.history.back(), 0.01 * rep.history.front());
}

TEST(InverseNufft, WeightsChangeNothingWhenUniform) {
  cf::vgpu::Device dev(4);
  InvProblem<double> p({24}, 2000, dev, 14);
  solver::InverseOptions opts;
  opts.max_iters = 40;
  opts.tol = 1e-11;
  solver::InverseNufft<double> inv(dev, p.N, +1, opts);
  std::vector<double> w(p.M, 1.0);
  inv.set_points(p.M, p.x.data(), nullptr, nullptr, w.data());
  std::vector<std::complex<double>> fw(p.f_true.size(), {0, 0});
  inv.solve(p.samples.data(), fw.data());
  solver::InverseNufft<double> inv0(dev, p.N, +1, opts);
  inv0.set_points(p.M, p.x.data(), nullptr, nullptr);
  std::vector<std::complex<double>> f0(p.f_true.size(), {0, 0});
  inv0.solve(p.samples.data(), f0.data());
  for (std::size_t i = 0; i < f0.size(); ++i)
    EXPECT_NEAR(std::abs(fw[i] - f0[i]), 0.0, 1e-9);
}

TEST(InverseNufft, DampingBiasesTowardZero) {
  cf::vgpu::Device dev(4);
  InvProblem<double> p({20}, 1500, dev, 15);
  auto run = [&](double lambda) {
    solver::InverseOptions opts;
    opts.max_iters = 60;
    opts.tol = 1e-11;
    opts.lambda = lambda;
    solver::InverseNufft<double> inv(dev, p.N, +1, opts);
    inv.set_points(p.M, p.x.data(), nullptr, nullptr);
    std::vector<std::complex<double>> f(p.f_true.size(), {0, 0});
    inv.solve(p.samples.data(), f.data());
    double norm = 0;
    for (auto& v : f) norm += std::norm(v);
    return std::sqrt(norm);
  };
  const double n0 = run(0.0);
  const double n_heavy = run(double(p.M));  // lambda ~ the operator scale
  EXPECT_LT(n_heavy, 0.8 * n0);
}

TEST(InverseNufft, WarmStartConvergesFasterOrEqual) {
  cf::vgpu::Device dev(4);
  InvProblem<double> p({18, 18}, 3500, dev, 16);
  solver::InverseOptions opts;
  opts.max_iters = 10;
  opts.tol = 1e-14;
  solver::InverseNufft<double> inv(dev, p.N, +1, opts);
  inv.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> cold(p.f_true.size(), {0, 0});
  const auto rep_cold = inv.solve(p.samples.data(), cold.data());
  // Warm start from the truth: residual should start (and stay) tiny.
  auto warm = p.f_true;
  const auto rep_warm = inv.solve(p.samples.data(), warm.data());
  EXPECT_LT(rep_warm.history.front(), 0.1 * rep_cold.history.front());
}

TEST(InverseNufft, SinglePrecisionWorks) {
  cf::vgpu::Device dev(4);
  InvProblem<float> p({20, 16}, 3000, dev, 17);
  solver::InverseOptions opts;
  opts.max_iters = 40;
  opts.tol = 1e-6;
  opts.nufft_tol = 1e-6;
  solver::InverseNufft<float> inv(dev, p.N, +1, opts);
  inv.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<float>> f(p.f_true.size(), {0, 0});
  inv.solve(p.samples.data(), f.data());
  EXPECT_LT(p.recovery_error(f), 1e-3);
}

TEST(InverseNufft, MisuseThrows) {
  cf::vgpu::Device dev(2);
  const std::int64_t N[1] = {16};
  solver::InverseNufft<double> inv(dev, std::span(N, 1), +1);
  std::vector<std::complex<double>> y(10), f(16);
  EXPECT_THROW(inv.solve(y.data(), f.data()), std::logic_error);  // no points
  std::vector<double> x(10, 0.1), wneg(10, -1.0);
  EXPECT_THROW(inv.set_points(10, x.data(), nullptr, nullptr, wneg.data()),
               std::invalid_argument);
}

TEST(InverseNufft, PlanOptionsPropagate) {
  // kerevalmeth/method preferences flow into both inner plans; result
  // matches the default-path solve.
  cf::vgpu::Device dev(4);
  InvProblem<double> p({20, 20}, 3000, dev, 18);
  solver::InverseOptions base;
  base.max_iters = 30;
  base.tol = 1e-10;
  solver::InverseOptions tuned = base;
  tuned.plan_opts.kerevalmeth = 1;
  tuned.plan_opts.method = cf::core::Method::SM;  // adjoint uses SM; fwd falls back
  solver::InverseNufft<double> a(dev, p.N, +1, base), b(dev, p.N, +1, tuned);
  a.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  b.set_points(p.M, p.x.data(), p.y.data(), nullptr);
  std::vector<std::complex<double>> fa(p.f_true.size(), {0, 0}),
      fb(p.f_true.size(), {0, 0});
  a.solve(p.samples.data(), fa.data());
  b.solve(p.samples.data(), fb.data());
  double num = 0, den = 0;
  for (std::size_t i = 0; i < fa.size(); ++i) {
    num += std::norm(fa[i] - fb[i]);
    den += std::norm(fa[i]);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-6);
}

TEST(InverseNufft, NoiseRobustnessWithDamping) {
  // With noisy samples, a small Tikhonov damping must not destroy recovery.
  cf::vgpu::Device dev(4);
  InvProblem<double> p({24}, 3000, dev, 19);
  cf::Rng rng(20);
  auto noisy = p.samples;
  for (auto& v : noisy) v += std::complex<double>(rng.normal(), rng.normal()) * 0.01;
  solver::InverseOptions opts;
  opts.max_iters = 50;
  opts.tol = 1e-10;
  opts.lambda = 1.0;
  solver::InverseNufft<double> inv(dev, p.N, +1, opts);
  inv.set_points(p.M, p.x.data(), nullptr, nullptr);
  std::vector<std::complex<double>> f(p.f_true.size(), {0, 0});
  inv.solve(noisy.data(), f.data());
  EXPECT_LT(p.recovery_error(f), 0.05);
}
