// Bin-sort pipeline and SM subproblem decomposition invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "spreadinterp/binsort.hpp"
#include "vgpu/device.hpp"

namespace spread = cf::spread;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

struct SortFixture {
  vgpu::Device dev{4};
  spread::GridSpec grid;
  spread::BinSpec bins;
  std::vector<float> xg, yg;
  spread::DeviceSort sort;

  SortFixture(std::int64_t nf, std::size_t M, bool clustered, std::uint64_t seed = 11) {
    grid.dim = 2;
    grid.nf = {nf, nf, 1};
    bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(2));
    Rng rng(seed);
    xg.resize(M);
    yg.resize(M);
    for (std::size_t j = 0; j < M; ++j) {
      const double lim = clustered ? 8.0 : double(nf);
      xg[j] = static_cast<float>(rng.uniform(0, lim));
      yg[j] = static_cast<float>(rng.uniform(0, lim));
    }
    spread::bin_sort<float>(dev, grid, bins, xg.data(), yg.data(), nullptr, M, sort);
  }

  std::uint32_t expected_bin(std::size_t j) const {
    const auto bx = std::min<std::int64_t>(std::int64_t(xg[j]) / bins.m[0], bins.nbins[0] - 1);
    const auto by = std::min<std::int64_t>(std::int64_t(yg[j]) / bins.m[1], bins.nbins[1] - 1);
    return static_cast<std::uint32_t>(bx + bins.nbins[0] * by);
  }
};

}  // namespace

TEST(BinSort, OrderIsAPermutation) {
  SortFixture f(256, 5000, false);
  std::vector<bool> seen(5000, false);
  for (std::size_t i = 0; i < 5000; ++i) {
    const auto j = f.sort.order[i];
    ASSERT_LT(j, 5000u);
    EXPECT_FALSE(seen[j]);
    seen[j] = true;
  }
}

TEST(BinSort, CountsSumToM) {
  SortFixture f(256, 7777, false);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < f.sort.bin_counts.size(); ++b) total += f.sort.bin_counts[b];
  EXPECT_EQ(total, 7777u);
}

TEST(BinSort, PointsGroupedByBinInSortedOrder) {
  SortFixture f(512, 20000, false);
  const std::size_t nbins = f.sort.bin_counts.size();
  for (std::size_t b = 0; b < nbins; ++b) {
    const std::uint32_t start = f.sort.bin_start[b];
    const std::uint32_t cnt = f.sort.bin_counts[b];
    for (std::uint32_t i = start; i < start + cnt; ++i)
      EXPECT_EQ(f.expected_bin(f.sort.order[i]), b);
  }
}

TEST(BinSort, BinStartIsExclusiveScanOfCounts) {
  SortFixture f(128, 3000, false);
  std::uint32_t run = 0;
  for (std::size_t b = 0; b < f.sort.bin_counts.size(); ++b) {
    EXPECT_EQ(f.sort.bin_start[b], run);
    run += f.sort.bin_counts[b];
  }
}

TEST(BinSort, ClusteredPointsLandInFewBins) {
  SortFixture f(512, 10000, true);
  std::size_t nonempty = 0;
  for (std::size_t b = 0; b < f.sort.bin_counts.size(); ++b)
    if (f.sort.bin_counts[b] > 0) ++nonempty;
  EXPECT_LE(nonempty, 4u);  // an 8x8 cluster spans at most 2x2 bins of 32x32
}

TEST(BinSort, EdgeCoordinatesClampToLastBin) {
  // nf=100 with m=32 -> nbins=4, last bin covers [96,100): indices up to 99.
  vgpu::Device dev(2);
  spread::GridSpec grid;
  grid.dim = 2;
  grid.nf = {100, 100, 1};
  auto bins = spread::BinSpec::make(grid, {32, 32, 1});
  EXPECT_EQ(bins.nbins[0], 4);
  std::vector<float> xg = {99.5f, 0.0f}, yg = {99.5f, 0.0f};
  spread::DeviceSort sort;
  spread::bin_sort<float>(dev, grid, bins, xg.data(), yg.data(), nullptr, 2, sort);
  EXPECT_EQ(sort.bin_counts[4 * 4 - 1], 1u);  // corner point in last bin
  EXPECT_EQ(sort.bin_counts[0], 1u);
}

TEST(Subproblems, CapRespectedAndCoverComplete) {
  SortFixture f(256, 30000, true);  // clustered: forces splitting
  const std::uint32_t msub = 1024;
  auto subs = spread::build_subproblems(f.dev, f.sort, msub);
  ASSERT_GT(subs.nsubprob, 0u);
  // Reconstruct per-bin coverage from the subproblem list.
  std::vector<std::uint64_t> covered(f.sort.bin_counts.size(), 0);
  for (std::uint32_t k = 0; k < subs.nsubprob; ++k) {
    const auto b = subs.subprob_bin[k];
    const auto off = subs.subprob_offset[k];
    const auto cnt = std::min(msub, f.sort.bin_counts[b] - off);
    EXPECT_LE(cnt, msub);
    EXPECT_EQ(off % msub, 0u);
    covered[b] += cnt;
  }
  for (std::size_t b = 0; b < covered.size(); ++b)
    EXPECT_EQ(covered[b], f.sort.bin_counts[b]);
}

TEST(Subproblems, UniformSmallBinsGiveOneSubproblemPerNonemptyBin) {
  SortFixture f(512, 2000, false);
  auto subs = spread::build_subproblems(f.dev, f.sort, 1024);
  std::size_t nonempty = 0;
  for (std::size_t b = 0; b < f.sort.bin_counts.size(); ++b)
    if (f.sort.bin_counts[b] > 0) ++nonempty;
  EXPECT_EQ(subs.nsubprob, nonempty);
}

TEST(Subproblems, MsubOneGivesOneSubproblemPerPoint) {
  SortFixture f(64, 500, false);
  auto subs = spread::build_subproblems(f.dev, f.sort, 1);
  EXPECT_EQ(subs.nsubprob, 500u);
}

TEST(BinSpec, EdgeBinsMayBeSmaller) {
  spread::GridSpec g;
  g.dim = 3;
  g.nf = {100, 64, 30};
  auto b = spread::BinSpec::make(g, {16, 16, 2});
  EXPECT_EQ(b.nbins[0], 7);  // ceil(100/16)
  EXPECT_EQ(b.nbins[1], 4);
  EXPECT_EQ(b.nbins[2], 15);
  EXPECT_EQ(b.total_bins(), 7 * 4 * 15);
}
