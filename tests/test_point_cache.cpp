// PointCache lifecycle (plan -> set_points -> execute):
//  * repeated execute() after one set_points() is bitwise-stable at one
//    worker and performs ZERO tap-table construction (Breakdown counter);
//  * re-set_points with different M/points invalidates and rebuilds the
//    cache exactly once, and results stay correct;
//  * the interior/boundary classification is exercised with an all-boundary
//    point set (everything within w/2 of the grid edge) and an all-interior
//    one, across dims x methods x precisions;
//  * the interior no-wrap fast path is bitwise-identical to the forced-wrap
//    path at one worker, and the per-execute-rebuild baseline
//    (Options::point_cache = 0) is bitwise-identical to the cached pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "cpu/direct.hpp"
#include "test_env.hpp"
#include "vgpu/device.hpp"

namespace core = cf::core;
namespace vgpu = cf::vgpu;
using cf::Rng;

namespace {

std::vector<std::int64_t> modes_for(int dim) {
  if (dim == 1) return {48};
  if (dim == 2) return {18, 22};
  return {10, 12, 8};
}

/// Point placement relative to the periodic fine-grid boundary.
enum class Placement { Anywhere, AllBoundary, AllInterior };

template <typename T>
struct Problem {
  std::vector<std::int64_t> N;
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> c;
  std::size_t M;
  std::int64_t ntot;

  /// `nf` is the plan's fine-grid size per axis (needed to aim coordinates at
  /// the boundary band); w the kernel width.
  Problem(std::vector<std::int64_t> modes, std::size_t M_,
          const std::array<std::int64_t, 3>& nf, int w, Placement place,
          std::uint64_t seed)
      : N(std::move(modes)), M(M_) {
    Rng rng(seed);
    const int dim = static_cast<int>(N.size());
    ntot = 1;
    for (auto n : N) ntot *= n;
    x.resize(M);
    if (dim >= 2) y.resize(M);
    if (dim >= 3) z.resize(M);
    c.resize(M);
    auto coord = [&](int d) -> T {
      // Generate a fine-grid coordinate g in the wanted band, then map it to
      // the user domain: fold_rescale(2*pi*g/nf) == g (up to rounding).
      double g;
      switch (place) {
        case Placement::Anywhere: g = rng.uniform(0, double(nf[d])); break;
        case Placement::AllBoundary:
          // Within w/2 of either periodic edge — strictly inside the band
          // where some tap needs the wrap (g <= w/2 - 1 or g > nf - w/2).
          g = rng.uniform() < 0.5 ? rng.uniform(0.0, 0.4)
                                  : rng.uniform(double(nf[d]) - 0.4, double(nf[d]));
          break;
        case Placement::AllInterior:
          g = rng.uniform(double(w), double(nf[d] - w));
          break;
      }
      return static_cast<T>(2.0 * std::numbers::pi * g / double(nf[d]));
    };
    for (std::size_t j = 0; j < M; ++j) {
      x[j] = coord(0);
      if (dim >= 2) y[j] = coord(1);
      if (dim >= 3) z[j] = coord(2);
      c[j] = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
    }
  }

  const T* yp() const { return y.empty() ? nullptr : y.data(); }
  const T* zp() const { return z.empty() ? nullptr : z.data(); }
};

template <typename T>
double accuracy_vs_direct(const Problem<T>& p, const std::vector<std::complex<T>>& f) {
  cf::ThreadPool pool(2);
  std::vector<double> xd(p.x.begin(), p.x.end()), yd(p.y.begin(), p.y.end()),
      zd(p.z.begin(), p.z.end());
  std::vector<std::complex<double>> cd(p.M);
  for (std::size_t j = 0; j < p.M; ++j) cd[j] = {p.c[j].real(), p.c[j].imag()};
  std::vector<std::complex<double>> want(static_cast<std::size_t>(p.ntot));
  cf::cpu::direct_type1<double>(pool, xd, yd, zd, cd, +1, p.N, want);
  std::vector<std::complex<double>> got(f.size());
  for (std::size_t i = 0; i < f.size(); ++i) got[i] = {f[i].real(), f[i].imag()};
  return cf::cpu::rel_l2_error<double>(got, want);
}

template <typename T>
bool sm_available(int dim, double tol) {
  vgpu::Device probe(1);
  core::Options sm;
  sm.method = core::Method::SM;
  try {
    core::Plan<T> trial(probe, 1, modes_for(dim), +1, tol, sm);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

}  // namespace

// ---- repeated execute: bitwise stability + zero tap construction ------------

template <typename T>
static void check_repeat(int dim, int type, core::Method method) {
  const double tol = 1e-6;
  vgpu::Device dev(1);  // one worker => deterministic accumulation order
  core::Options opts;
  opts.method = method;
  opts.fastpath = cf::test::env_fastpath();
  opts.tiled_spread = cf::test::env_tiled();
  core::Plan<T> plan(dev, type, modes_for(dim), +1, tol, opts);

  Problem<T> p(modes_for(dim), 600, plan.fine_grid().nf, plan.kernel_width(),
               Placement::Anywhere, 7 + dim);
  plan.set_points(p.M, p.x.data(), p.yp(), p.zp());
  const auto builds_after_setpts = plan.last_breakdown().tap_builds;

  std::vector<std::complex<T>> f(static_cast<std::size_t>(p.ntot));
  if (type == 1)
    for (auto& v : f) v = {T(0), T(0)};
  else {
    Rng rng(31);
    for (auto& v : f)
      v = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }

  auto run_once = [&] {
    if (type == 1) {
      std::vector<std::complex<T>> out(f.size());
      plan.execute(p.c.data(), out.data());
      return out;
    }
    std::vector<std::complex<T>> out(p.M);
    plan.execute(out.data(), f.data());
    return out;
  };

  const auto first = run_once();
  for (int rep = 0; rep < 3; ++rep) {
    const auto again = run_once();
    ASSERT_EQ(first.size(), again.size());
    for (std::size_t i = 0; i < first.size(); ++i)
      ASSERT_EQ(first[i], again[i])
          << "dim=" << dim << " type=" << type << " method="
          << core::method_name(method) << " rep=" << rep << " i=" << i;
  }
  // Zero tap-table construction during the four executes.
  EXPECT_EQ(plan.last_breakdown().tap_builds, builds_after_setpts)
      << "dim=" << dim << " method=" << core::method_name(method);
  EXPECT_GE(plan.last_breakdown().cache_hits, 4u);
  if (method == core::Method::SM)
    EXPECT_EQ(builds_after_setpts, 1u);  // exactly one build, in set_points
}

TEST(PointCache, RepeatedExecuteBitwiseStableZeroTapBuildsF64) {
  for (int dim = 1; dim <= 3; ++dim) {
    check_repeat<double>(dim, 1, core::Method::GM);
    check_repeat<double>(dim, 1, core::Method::GMSort);
    check_repeat<double>(dim, 2, core::Method::GMSort);
    if (sm_available<double>(dim, 1e-6)) check_repeat<double>(dim, 1, core::Method::SM);
  }
}

TEST(PointCache, RepeatedExecuteBitwiseStableZeroTapBuildsF32) {
  for (int dim = 1; dim <= 3; ++dim) {
    check_repeat<float>(dim, 1, core::Method::GM);
    check_repeat<float>(dim, 1, core::Method::GMSort);
    check_repeat<float>(dim, 2, core::Method::GMSort);
    if (sm_available<float>(dim, 1e-6)) check_repeat<float>(dim, 1, core::Method::SM);
  }
}

// ---- re-set_points invalidates and rebuilds ---------------------------------

TEST(PointCache, ReSetPointsInvalidatesAndRebuildsOnce) {
  for (int dim = 2; dim <= 3; ++dim) {
    if (!sm_available<double>(dim, 1e-9)) continue;
    vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(4)));
    core::Options opts;
    opts.method = core::Method::SM;
    opts.fastpath = cf::test::env_fastpath();
    opts.tiled_spread = cf::test::env_tiled();
    core::Plan<double> plan(dev, 1, modes_for(dim), +1, 1e-9, opts);

    Problem<double> p1(modes_for(dim), 500, plan.fine_grid().nf, plan.kernel_width(),
                       Placement::Anywhere, 11);
    plan.set_points(p1.M, p1.x.data(), p1.yp(), p1.zp());
    EXPECT_EQ(plan.last_breakdown().tap_builds, 1u);
    std::vector<std::complex<double>> f1(static_cast<std::size_t>(p1.ntot));
    plan.execute(p1.c.data(), f1.data());
    EXPECT_LT(accuracy_vs_direct(p1, f1), 1e-8) << "dim=" << dim << " first points";

    // Different M AND different points: the old cache must not leak through.
    Problem<double> p2(modes_for(dim), 900, plan.fine_grid().nf, plan.kernel_width(),
                       Placement::Anywhere, 23);
    plan.set_points(p2.M, p2.x.data(), p2.yp(), p2.zp());
    EXPECT_EQ(plan.last_breakdown().tap_builds, 2u);  // exactly one more
    std::vector<std::complex<double>> f2(static_cast<std::size_t>(p2.ntot));
    plan.execute(p2.c.data(), f2.data());
    EXPECT_LT(accuracy_vs_direct(p2, f2), 1e-8) << "dim=" << dim << " second points";
    EXPECT_EQ(plan.last_breakdown().tap_builds, 2u);  // execute built nothing
  }
}

// ---- interior/boundary classification ---------------------------------------

template <typename T>
static void check_classification(int dim, core::Method method, Placement place,
                                 std::uint64_t seed) {
  // w = 7 / w = 6: wide enough that the boundary band is substantial, narrow
  // enough that the all-interior band [w, nf - w] is non-degenerate on the
  // smallest 3D grid.
  const double tol = std::is_same_v<T, double> ? 1e-6 : 1e-5;
  vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(4)));
  core::Options opts;
  opts.method = method;
  opts.fastpath = cf::test::env_fastpath();
  // Pin the atomic writeback: the tiled engine skips classification (its
  // accumulation never wraps), and this test targets the classification.
  opts.tiled_spread = 0;
  core::Plan<T> plan(dev, 1, modes_for(dim), +1, tol, opts);
  Problem<T> p(modes_for(dim), 400, plan.fine_grid().nf, plan.kernel_width(), place,
               seed);
  plan.set_points(p.M, p.x.data(), p.yp(), p.zp());

  const auto& bd = plan.last_breakdown();
  ASSERT_EQ(bd.interior_points + bd.boundary_points, p.M);
  if (place == Placement::AllBoundary) {
    EXPECT_EQ(bd.interior_points, 0u)
        << "dim=" << dim << " method=" << core::method_name(method);
  } else {
    EXPECT_EQ(bd.boundary_points, 0u)
        << "dim=" << dim << " method=" << core::method_name(method);
  }

  std::vector<std::complex<T>> f(static_cast<std::size_t>(p.ntot));
  plan.execute(p.c.data(), f.data());
  EXPECT_LT(accuracy_vs_direct(p, f), (std::is_same_v<T, double> ? 1e-5 : 3e-4))
      << "dim=" << dim << " method=" << core::method_name(method)
      << (place == Placement::AllBoundary ? " all-boundary" : " all-interior");
}

TEST(PointCache, AllBoundaryClassificationAllDimsMethodsPrecisions) {
  for (int dim = 1; dim <= 3; ++dim)
    for (auto m : {core::Method::GM, core::Method::GMSort}) {
      check_classification<double>(dim, m, Placement::AllBoundary, 41 + dim);
      check_classification<float>(dim, m, Placement::AllBoundary, 43 + dim);
    }
}

TEST(PointCache, AllInteriorClassificationAllDimsMethodsPrecisions) {
  for (int dim = 1; dim <= 3; ++dim)
    for (auto m : {core::Method::GM, core::Method::GMSort}) {
      check_classification<double>(dim, m, Placement::AllInterior, 51 + dim);
      check_classification<float>(dim, m, Placement::AllInterior, 53 + dim);
    }
}

// ---- interior toggle is numerically transparent ------------------------------
//
// The no-wrap indices of interior points equal the wrapped ones bit for bit,
// so for GATHER stages (type-2 interp, where each point's output is an
// independent sum) the toggle is a bitwise no-op. For the type-1 ATOMIC
// scatter the interior-first partition intentionally reorders the per-point
// accumulation (that is what makes the hot loops branch-free), so the two
// settings agree to float-reassociation level there; on the TILED writeback
// the accumulation order is per-bin and independent of the partition, so
// type 1 is bitwise again whenever the tile engine is active.

TEST(PointCache, InteriorFastpathToggleIsNumericallyTransparent) {
  for (int dim = 1; dim <= 3; ++dim) {
    for (int type : {1, 2}) {
      vgpu::Device dev(1);
      core::Options on, off;
      on.method = off.method = core::Method::GMSort;
      on.fastpath = off.fastpath = cf::test::env_fastpath();
      on.tiled_spread = off.tiled_spread = cf::test::env_tiled();
      off.interior_fastpath = 0;
      core::Plan<double> pa(dev, type, modes_for(dim), +1, 1e-8, on);
      core::Plan<double> pb(dev, type, modes_for(dim), +1, 1e-8, off);
      Problem<double> p(modes_for(dim), 800, pa.fine_grid().nf, pa.kernel_width(),
                        Placement::Anywhere, 61 + dim);
      pa.set_points(p.M, p.x.data(), p.yp(), p.zp());
      pb.set_points(p.M, p.x.data(), p.yp(), p.zp());
      EXPECT_GT(pa.last_breakdown().interior_points, 0u);  // fast path exercised
      if (type == 1) {
        std::vector<std::complex<double>> fa(static_cast<std::size_t>(p.ntot)),
            fb(fa.size());
        pa.execute(p.c.data(), fa.data());
        pb.execute(p.c.data(), fb.data());
        if (pa.last_breakdown().tiled) {
          // Tile-owned writeback: accumulation order ignores the partition.
          for (std::size_t i = 0; i < fa.size(); ++i)
            ASSERT_EQ(fa[i], fb[i]) << "dim=" << dim << " i=" << i;
        } else {
          EXPECT_LT(cf::cpu::rel_l2_error<double>(fa, fb), 1e-12) << "dim=" << dim;
        }
      } else {
        Rng rng(71);
        std::vector<std::complex<double>> f(static_cast<std::size_t>(p.ntot));
        for (auto& v : f) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
        std::vector<std::complex<double>> ca(p.M), cb(p.M);
        pa.execute(ca.data(), f.data());
        pb.execute(cb.data(), f.data());
        for (std::size_t i = 0; i < ca.size(); ++i)
          ASSERT_EQ(ca[i], cb[i]) << "dim=" << dim << " i=" << i;
      }
    }
  }
}

TEST(PointCache, CachedPipelineBitwiseMatchesPerExecuteRebuildOneWorker) {
  for (int dim = 1; dim <= 3; ++dim) {
    if (!sm_available<float>(dim, 1e-6)) continue;
    vgpu::Device dev(1);
    core::Options cached, rebuild;
    cached.method = rebuild.method = core::Method::SM;
    cached.fastpath = rebuild.fastpath = cf::test::env_fastpath();
    cached.tiled_spread = rebuild.tiled_spread = cf::test::env_tiled();
    rebuild.point_cache = 0;
    core::Plan<float> pa(dev, 1, modes_for(dim), +1, 1e-6, cached);
    core::Plan<float> pb(dev, 1, modes_for(dim), +1, 1e-6, rebuild);
    Problem<float> p(modes_for(dim), 700, pa.fine_grid().nf, pa.kernel_width(),
                     Placement::Anywhere, 81 + dim);
    pa.set_points(p.M, p.x.data(), p.yp(), p.zp());
    pb.set_points(p.M, p.x.data(), p.yp(), p.zp());
    std::vector<std::complex<float>> fa(static_cast<std::size_t>(p.ntot)), fb(fa.size());
    pa.execute(p.c.data(), fa.data());
    pb.execute(p.c.data(), fb.data());
    // The rebuild baseline constructs its table inside execute; the cached
    // plan must not.
    EXPECT_EQ(pa.last_breakdown().tap_builds, 1u);
    EXPECT_EQ(pb.last_breakdown().tap_builds, 1u);  // built during execute
    pb.execute(p.c.data(), fb.data());
    EXPECT_EQ(pb.last_breakdown().tap_builds, 2u);  // ...and again per execute
    for (std::size_t i = 0; i < fa.size(); ++i)
      ASSERT_EQ(fa[i], fb[i]) << "dim=" << dim << " i=" << i;
  }
}

// ---- point_cache = 2: plan-resident taps for the tiled GM-sort spread -------

TEST(PointCache, GmSortTiledCachedTapsBitwiseAndBuiltOnce) {
  // The aggressive mode the service layer's batched plans run: the tiled
  // GM-sort spread streams a tap table persisted by set_points instead of
  // evaluating taps inline each execute. Output must be bitwise-identical to
  // the default inline evaluation, with exactly one build, in set_points.
  // Modes are sized so the tile-geometry gate passes (inline vs cached only
  // differ on the tiled path).
  for (int dim = 2; dim <= 3; ++dim) {
    const auto modes = dim == 2 ? std::vector<std::int64_t>{20, 24}
                                : std::vector<std::int64_t>{16, 16, 12};
    vgpu::Device dev(static_cast<std::size_t>(cf::test::env_workers(2)));
    core::Options inline_taps, cached_taps;
    inline_taps.method = cached_taps.method = core::Method::GMSort;
    inline_taps.fastpath = cached_taps.fastpath = cf::test::env_fastpath();
    inline_taps.tiled_spread = cached_taps.tiled_spread = 1;
    cached_taps.point_cache = 2;
    core::Plan<float> pa(dev, 1, modes, +1, 1e-5, inline_taps);
    core::Plan<float> pb(dev, 1, modes, +1, 1e-5, cached_taps);
    Problem<float> p(modes, 900, pa.fine_grid().nf, pa.kernel_width(),
                     Placement::Anywhere, 51 + dim);
    pa.set_points(p.M, p.x.data(), p.yp(), p.zp());
    pb.set_points(p.M, p.x.data(), p.yp(), p.zp());
    EXPECT_EQ(pa.last_breakdown().tap_builds, 0u);  // GM-sort default: no table
    EXPECT_EQ(pb.last_breakdown().tap_builds, 1u);  // built once, in set_points
    std::vector<std::complex<float>> fa(static_cast<std::size_t>(p.ntot)), fb(fa.size());
    for (int rep = 0; rep < 2; ++rep) {
      pa.execute(p.c.data(), fa.data());
      pb.execute(p.c.data(), fb.data());
      ASSERT_EQ(pa.last_breakdown().tiled, 1) << "dim=" << dim;
      ASSERT_EQ(pb.last_breakdown().tiled, 1) << "dim=" << dim;
      for (std::size_t i = 0; i < fa.size(); ++i)
        ASSERT_EQ(fa[i], fb[i]) << "dim=" << dim << " rep=" << rep << " i=" << i;
    }
    EXPECT_EQ(pb.last_breakdown().tap_builds, 1u);  // zero builds in executes
  }
}
