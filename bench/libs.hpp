// Uniform adapter over the five benchmarked libraries (paper Sec. IV-C):
//   finufft     — the CPU comparator (cf::cpu::CpuPlan)
//   cufinufft   — this library, SM or GM-sort spreading (cf::core::Plan)
//   cunfft      — CUNFFT-like baseline (Gaussian kernel, unsorted GM)
//   gpunufft    — gpuNUFFT-like baseline (KB kernel, sector gather)
//
// Reports the paper's three timings:
//   total+mem — includes device alloc + host<->device transfer
//   total     — plan + set_points + execute, data already on device
//   exec      — repeat execute only (points preprocessed)
// plus the achieved relative l2 error against a tol=1e-14 double ground
// truth computed with the CPU library (the paper measures the same way).
#pragma once

#include <complex>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/cunfft_like.hpp"
#include "baselines/gpunufft_like.hpp"
#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "cpu/cpu_plan.hpp"
#include "cpu/direct.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

namespace cf::bench {

enum class Lib { Finufft, CufinufftSM, CufinufftGMSort, Cunfft, Gpunufft };

inline const char* lib_name(Lib l) {
  switch (l) {
    case Lib::Finufft: return "finufft";
    case Lib::CufinufftSM: return "cufinufft(SM)";
    case Lib::CufinufftGMSort: return "cufinufft(GM-sort)";
    case Lib::Cunfft: return "cunfft";
    case Lib::Gpunufft: return "gpunufft";
  }
  return "?";
}

struct LibResult {
  double total_mem = -1;  ///< seconds
  double total = -1;
  double exec = -1;
  double err = -1;  ///< achieved relative l2 error (-1 = not measured)
  bool ok = false;  ///< false when this lib cannot run the configuration
};

/// Ground truth for one problem instance, computed once and shared.
struct GroundTruth {
  std::vector<std::complex<double>> type1;  ///< modes from tol=1e-14 CPU run
  std::vector<std::complex<double>> type2;  ///< values at points
  std::vector<std::complex<double>> fmodes; ///< the type-2 input coefficients
};

inline GroundTruth make_ground_truth(ThreadPool& pool, const Workload<double>& wl,
                                     std::span<const std::int64_t> N,
                                     std::uint64_t seed = 777) {
  GroundTruth gt;
  std::int64_t ntot = 1;
  for (auto n : N) ntot *= n;
  gt.fmodes.resize(static_cast<std::size_t>(ntot));
  Rng rng(seed);
  for (auto& v : gt.fmodes) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};

  cpu::CpuPlan<double> p1(pool, 1, N, +1, 1e-14);
  p1.set_points(wl.M, wl.xp(), wl.yp(), wl.zp());
  gt.type1.resize(static_cast<std::size_t>(ntot));
  auto c = wl.c;  // CpuPlan wants non-const
  p1.execute(c.data(), gt.type1.data());

  cpu::CpuPlan<double> p2(pool, 2, N, +1, 1e-14);
  p2.set_points(wl.M, wl.xp(), wl.yp(), wl.zp());
  gt.type2.resize(wl.M);
  auto f = gt.fmodes;
  p2.execute(gt.type2.data(), f.data());
  return gt;
}

namespace detail {

template <typename T>
double err_vs(const std::vector<std::complex<T>>& got,
              const std::vector<std::complex<double>>& want) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double dr = double(got[i].real()) - want[i].real();
    const double di = double(got[i].imag()) - want[i].imag();
    num += dr * dr + di * di;
    den += std::norm(want[i]);
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

/// Generic runner for the device-side plans (core::Plan and the baselines all
/// share the plan/set_points/execute shape).
template <typename T, typename PlanT, typename MakePlan>
LibResult run_device_lib(vgpu::Device& dev, MakePlan&& make_plan, int type,
                         const Workload<double>& wl, const GroundTruth& gt, int reps) {
  LibResult r;
  // Cast inputs to T (host side; the paper's host arrays).
  std::vector<T> hx(wl.M), hy, hz;
  for (std::size_t j = 0; j < wl.M; ++j) hx[j] = static_cast<T>(wl.x[j]);
  if (!wl.y.empty()) {
    hy.resize(wl.M);
    for (std::size_t j = 0; j < wl.M; ++j) hy[j] = static_cast<T>(wl.y[j]);
  }
  if (!wl.z.empty()) {
    hz.resize(wl.M);
    for (std::size_t j = 0; j < wl.M; ++j) hz[j] = static_cast<T>(wl.z[j]);
  }
  const std::size_t ntot = gt.fmodes.size();
  std::vector<std::complex<T>> hc(wl.M), hf(ntot);
  for (std::size_t j = 0; j < wl.M; ++j)
    hc[j] = {static_cast<T>(wl.c[j].real()), static_cast<T>(wl.c[j].imag())};
  for (std::size_t i = 0; i < ntot; ++i)
    hf[i] = {static_cast<T>(gt.fmodes[i].real()), static_cast<T>(gt.fmodes[i].imag())};

  double best_tm = 1e300, best_t = 1e300, best_e = 1e300;
  std::vector<std::complex<T>> out;
  for (int rep = 0; rep < reps + 1; ++rep) {  // first iteration = warmup
    Timer tm;
    // -- total+mem starts: allocate on device and transfer ------------------
    vgpu::device_buffer<T> dx(dev, std::span<const T>(hx));
    vgpu::device_buffer<T> dy, dz;
    if (!hy.empty()) dy = vgpu::device_buffer<T>(dev, std::span<const T>(hy));
    if (!hz.empty()) dz = vgpu::device_buffer<T>(dev, std::span<const T>(hz));
    vgpu::device_buffer<std::complex<T>> dc(dev, std::span<const std::complex<T>>(hc));
    vgpu::device_buffer<std::complex<T>> df(dev, std::span<const std::complex<T>>(hf));

    Timer tt;
    auto plan = make_plan();
    plan->set_points(wl.M, dx.data(), dy.empty() ? nullptr : dy.data(),
                     dz.empty() ? nullptr : dz.data());
    plan->execute(dc.data(), df.data());
    const double t_total = tt.seconds();

    Timer te;
    plan->execute(dc.data(), df.data());
    const double t_exec = te.seconds();

    // Transfer the result back (counts toward total+mem).
    out.resize(type == 1 ? ntot : wl.M);
    if (type == 1)
      df.copy_to_host(out);
    else
      dc.copy_to_host(out);
    const double t_tm = tm.seconds() - t_exec;  // exclude the extra exec

    if (rep == 0) continue;
    best_tm = std::min(best_tm, t_tm);
    best_t = std::min(best_t, t_total);
    best_e = std::min(best_e, t_exec);
  }
  r.total_mem = best_tm;
  r.total = best_t;
  r.exec = best_e;
  r.err = err_vs(out, type == 1 ? gt.type1 : gt.type2);
  r.ok = true;
  return r;
}

}  // namespace detail

/// Runs one library on one problem. `N` are the mode counts; tol the
/// requested tolerance; upsampfac the fine-grid sigma (the baselines only
/// support their native sigma = 2 — their Gaussian/KB kernels are tuned for
/// it). Returns ok=false for unsupported configurations (e.g. SM in 3D
/// double, gpuNUFFT in 1D, baselines at sigma != 2).
template <typename T>
LibResult run_lib(Lib lib, vgpu::Device& dev, ThreadPool& pool, int type,
                  std::span<const std::int64_t> N, double tol, const Workload<double>& wl,
                  const GroundTruth& gt, int reps = 2, double upsampfac = 2.0) {
  const int iflag = +1;
  try {
    switch (lib) {
      case Lib::Finufft: {
        LibResult r;
        std::vector<T> hx(wl.M), hy, hz;
        for (std::size_t j = 0; j < wl.M; ++j) hx[j] = static_cast<T>(wl.x[j]);
        if (!wl.y.empty()) {
          hy.resize(wl.M);
          for (std::size_t j = 0; j < wl.M; ++j) hy[j] = static_cast<T>(wl.y[j]);
        }
        if (!wl.z.empty()) {
          hz.resize(wl.M);
          for (std::size_t j = 0; j < wl.M; ++j) hz[j] = static_cast<T>(wl.z[j]);
        }
        const std::size_t ntot = gt.fmodes.size();
        std::vector<std::complex<T>> hc(wl.M), hf(ntot);
        for (std::size_t j = 0; j < wl.M; ++j)
          hc[j] = {static_cast<T>(wl.c[j].real()), static_cast<T>(wl.c[j].imag())};
        for (std::size_t i = 0; i < ntot; ++i)
          hf[i] = {static_cast<T>(gt.fmodes[i].real()),
                   static_cast<T>(gt.fmodes[i].imag())};
        double best_t = 1e300, best_e = 1e300;
        typename cpu::CpuPlan<T>::Options copts;
        copts.upsampfac = upsampfac;
        for (int rep = 0; rep < reps + 1; ++rep) {
          Timer tt;
          cpu::CpuPlan<T> plan(pool, type, N, iflag, tol, copts);
          plan.set_points(wl.M, hx.data(), hy.empty() ? nullptr : hy.data(),
                          hz.empty() ? nullptr : hz.data());
          plan.execute(hc.data(), hf.data());
          const double t_total = tt.seconds();
          Timer te;
          plan.execute(hc.data(), hf.data());
          const double t_exec = te.seconds();
          if (rep == 0) continue;
          best_t = std::min(best_t, t_total);
          best_e = std::min(best_e, t_exec);
        }
        r.total = r.total_mem = best_t;  // no device transfers on the CPU
        r.exec = best_e;
        r.err = detail::err_vs(type == 1 ? hf : hc, type == 1 ? gt.type1 : gt.type2);
        r.ok = true;
        return r;
      }
      case Lib::CufinufftSM:
      case Lib::CufinufftGMSort: {
        core::Options opts;
        opts.method =
            lib == Lib::CufinufftSM ? core::Method::SM : core::Method::GMSort;
        if (type == 2) opts.method = core::Method::GMSort;  // SM is type-1 only
        opts.upsampfac = upsampfac;
        return detail::run_device_lib<T, core::Plan<T>>(
            dev,
            [&] { return std::make_unique<core::Plan<T>>(dev, type, N, iflag, tol, opts); },
            type, wl, gt, reps);
      }
      case Lib::Cunfft:
        if (upsampfac != 2.0) return {};
        return detail::run_device_lib<T, baselines::CunfftPlan<T>>(
            dev,
            [&] { return std::make_unique<baselines::CunfftPlan<T>>(dev, type, N, iflag, tol); },
            type, wl, gt, reps);
      case Lib::Gpunufft:
        if (upsampfac != 2.0) return {};
        return detail::run_device_lib<T, baselines::GpunufftPlan<T>>(
            dev,
            [&] { return std::make_unique<baselines::GpunufftPlan<T>>(dev, type, N, iflag, tol); },
            type, wl, gt, reps);
    }
  } catch (const std::exception&) {
    return {};  // configuration unsupported for this library
  }
  return {};
}

}  // namespace cf::bench
