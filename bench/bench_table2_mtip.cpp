// Table II reproduction: M-TIP slicing/merging NUFFT wall-clock, CPU vs
// single-device vs whole-node (multi-device), at the paper's per-rank sizes.
//
// Paper setup: slicing = 3D type 2, N=41, M=1.02e6/rank; merging = 3D type 1,
// N=81, M=1.64e7/rank (scaled down by default here), eps = 1e-12 (fp64).
//
// Paper shape to reproduce:
//   - single rank: GPU ~1.5x CPU for slicing, ~0.9x for merging
//   - whole node (one rank per GPU): 5-12x over the CPU running the
//     whole-node problem on its fixed thread count
//
// Flags: --images (default 60; paper ~1000), --ngpus (default 4), --tol.
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "cpu/cpu_plan.hpp"
#include "mtip/mtip.hpp"

using namespace cf;
using namespace cf::bench;

namespace {

/// CPU reference: the same NUFFT workload through the FINUFFT-like library.
double cpu_nufft_time(ThreadPool& pool, int type, std::int64_t Naxis, double tol,
                      const std::vector<double>& x, const std::vector<double>& y,
                      const std::vector<double>& z) {
  const std::size_t M = x.size();
  std::vector<std::int64_t> N(3, Naxis);
  cpu::CpuPlan<double> plan(pool, type, N, type == 1 ? +1 : -1, tol);
  plan.set_points(M, x.data(), y.data(), z.data());
  std::vector<std::complex<double>> c(M, {1.0, 0.0});
  std::vector<std::complex<double>> f(static_cast<std::size_t>(Naxis * Naxis * Naxis));
  Timer t;
  plan.execute(c.data(), f.data());
  if (type == 1) plan.execute(c.data(), f.data());  // merging runs two type-1s
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int images = static_cast<int>(cli.get_int("images", 60));
  const int ngpus = static_cast<int>(cli.get_int("ngpus", 4));
  const double tol = cli.get_double("tol", 1e-12);
  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());

  banner("Table II — M-TIP slicing (type 2) and merging (type 1) wall-clock",
         "single rank: GPU ~1.5x CPU (slicing), ~0.9x (merging); whole node "
         "(rank per GPU): 5-12x over the fixed-size CPU");

  mtip::MtipConfig cfg;
  cfg.N_slice = 41;
  cfg.N_merge = 81;
  cfg.nimages = images;
  cfg.det.ndet = 32;
  cfg.tol = tol;
  mtip::BlobDensity rho(6, 2.0, 4242);

  // Geometry identical to what a rank generates, for the CPU reference.
  const auto rots = mtip::random_rotations(static_cast<std::size_t>(images), cfg.seed);
  std::vector<double> x, y, z;
  for (const auto& R : rots) mtip::ewald_slice_points(R, cfg.det, x, y, z);
  const std::size_t M = x.size();
  std::printf("\nPer-rank problem: %d images, M=%.2e points, N_slice=%lld, "
              "N_merge=%lld, eps=%.0e\n",
              images, double(M), (long long)cfg.N_slice, (long long)cfg.N_merge, tol);

  // CPU reference with all cores (the paper's 40-thread Skylake analogue).
  ThreadPool pool(cores);
  const double cpu_slice = cpu_nufft_time(pool, 2, cfg.N_slice, tol, x, y, z);
  const double cpu_merge = cpu_nufft_time(pool, 1, cfg.N_merge, tol, x, y, z);

  // Single rank on one device (all cores: a lone rank owns the GPU).
  mtip::NodeSpec node;
  node.ngpus = ngpus;
  node.cores = cores;
  const auto single = mtip::run_weak_scaling(1, cfg, node, rho);

  // Whole node: one rank per device; per-rank size fixed. The CPU comparator
  // must process ngpus x the data on the same cores.
  const auto whole = mtip::run_weak_scaling(ngpus, cfg, node, rho);
  const double cpu_slice_node = cpu_slice * ngpus;  // serial scaling of fixed cores
  const double cpu_merge_node = cpu_merge * ngpus;

  Table t({"task", "parallelism", "CPU time (s)", "device time (s)", "speedup"});
  t.add_row({"slicing (type 2)", "single-rank", Table::fmt(cpu_slice, 3),
             Table::fmt(single.slice_s, 3),
             Table::fmt(cpu_slice / single.slice_s, 1) + "x"});
  t.add_row({"slicing (type 2)", "whole-node", Table::fmt(cpu_slice_node, 3),
             Table::fmt(whole.slice_s, 3),
             Table::fmt(cpu_slice_node / whole.slice_s, 1) + "x"});
  t.add_row({"merging (type 1)", "single-rank", Table::fmt(cpu_merge, 3),
             Table::fmt(single.merge_s, 3),
             Table::fmt(cpu_merge / single.merge_s, 1) + "x"});
  t.add_row({"merging (type 1)", "whole-node", Table::fmt(cpu_merge_node, 3),
             Table::fmt(whole.merge_s, 3),
             Table::fmt(cpu_merge_node / whole.merge_s, 1) + "x"});
  t.print();
  return 0;
}
