// Ablation measuring the paper's Sec. III-B claim: "the benefit of applying
// an idea like SM to interpolation would be limited" — reads carry no write
// conflicts, so shared-memory staging mostly adds copies. Compares GM-sort
// interpolation against the interp_sm variant on both distributions.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/primitives.hpp"

using namespace cf;
using bench::Dist;

namespace {

void interp_variants(benchmark::State& state) {
  const bool use_sm = state.range(0);
  const Dist dist = state.range(1) ? Dist::Cluster : Dist::Rand;
  const std::int64_t nf = 512;

  static vgpu::Device dev;
  spread::GridSpec grid;
  grid.dim = 2;
  grid.nf = {nf, nf, 1};
  const auto bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(2));
  const auto kp = spread::KernelParams<float>::from_width(6);
  const std::size_t M = static_cast<std::size_t>(grid.total());
  auto wl = bench::make_workload<float>(2, M, dist, nf);
  vgpu::device_buffer<float> xg(dev, M), yg(dev, M);
  dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg[j] = spread::fold_rescale(wl.x[j], grid.nf[0]);
    yg[j] = spread::fold_rescale(wl.y[j], grid.nf[1]);
  });
  spread::NuPoints<float> pts{xg.data(), yg.data(), nullptr, M};
  spread::DeviceSort sort;
  spread::bin_sort<float>(dev, grid, bins, xg.data(), yg.data(), nullptr, M, sort);
  auto subs = spread::build_subproblems(dev, sort, 1024);
  vgpu::device_buffer<std::complex<float>> fw(dev, static_cast<std::size_t>(grid.total()));
  dev.launch_items(fw.size(), 256, [&](std::size_t i, vgpu::BlockCtx&) {
    fw[i] = {float(i % 9) - 4.0f, float(i % 5) - 2.0f};
  });
  std::vector<std::complex<float>> c(M);

  for (auto _ : state) {
    if (use_sm)
      spread::interp_sm<float>(dev, grid, bins, kp, pts, fw.data(), c.data(), sort, subs,
                               1024);
    else
      spread::interp<float>(dev, grid, kp, pts, fw.data(), c.data(), sort.order.data());
  }
  state.SetLabel(std::string(use_sm ? "interp_sm" : "interp_gmsort") + "/" +
                 (dist == Dist::Rand ? "rand" : "cluster"));
  state.counters["pts_per_s"] = benchmark::Counter(
      double(M) * double(state.iterations()), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(interp_variants)->ArgsProduct({{0, 1}, {0, 1}})->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
