// Ablation: kernel evaluation method (cuFINUFFT's kerevalmeth option).
// Direct exp/sqrt evaluation vs the piecewise-polynomial Horner table, across
// kernel widths. Spreading cost is dominated by the w evaluations per
// point-axis plus the w^d accumulates, so the gain grows with w and shrinks
// with dimension.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/plan.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"
#include "vgpu/primitives.hpp"

using namespace cf;
using bench::Dist;

namespace {

void kereval_sweep(benchmark::State& state) {
  const int tole = static_cast<int>(state.range(0));
  const int kerevalmeth = static_cast<int>(state.range(1));
  const double tol = std::pow(10.0, -tole);
  const std::int64_t N = 256;
  const std::size_t M = 500000;

  static vgpu::Device dev;
  const std::int64_t nmodes[2] = {N, N};
  auto wl = bench::make_workload<float>(2, M, Dist::Rand, 2 * N);
  core::Options opts;
  opts.kerevalmeth = kerevalmeth;
  core::Plan<float> plan(dev, 1, std::span(nmodes, 2), +1, tol, opts);
  vgpu::device_buffer<float> dx(dev, std::span<const float>(wl.x)),
      dy(dev, std::span<const float>(wl.y));
  vgpu::device_buffer<std::complex<float>> dc(dev,
                                              std::span<const std::complex<float>>(wl.c));
  vgpu::device_buffer<std::complex<float>> df(dev, static_cast<std::size_t>(N * N));
  plan.set_points(M, dx.data(), dy.data(), nullptr);

  for (auto _ : state) plan.execute(dc.data(), df.data());
  state.SetLabel(kerevalmeth ? "horner" : "exp");
  state.counters["w"] = plan.kernel_width();
  state.counters["pts_per_s"] = benchmark::Counter(
      double(M) * double(state.iterations()), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(kereval_sweep)
    ->ArgsProduct({{2, 5, 8, 12}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
