// Ablation (paper Rmk. 1): bin-size hand-tuning for GM-sort/SM spreading.
// The paper settled on 32x32 (2D) and 16x16x2 (3D) by sweeping powers of two
// under the shared-memory constraint; this google-benchmark binary redoes
// that sweep. Reported counters: pts/s and global atomics per point.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/primitives.hpp"
#include "vgpu/device.hpp"

using namespace cf;
using bench::Dist;

namespace {

template <int DIM>
void bin_size_sweep(benchmark::State& state) {
  const int mx = static_cast<int>(state.range(0));
  const int my = static_cast<int>(state.range(1));
  const int mz = DIM == 3 ? static_cast<int>(state.range(2)) : 1;
  const std::int64_t nf = DIM == 2 ? 512 : 64;

  static vgpu::Device dev;  // shared across benchmark iterations
  spread::GridSpec grid;
  grid.dim = DIM;
  for (int d = 0; d < DIM; ++d) grid.nf[d] = nf;
  const auto bins = spread::BinSpec::make(grid, {mx, my, mz});
  const auto kp = spread::KernelParams<float>::from_width(6);
  if (!spread::sm_fits<float>(dev, grid, bins, kp.w)) {
    state.SkipWithError("padded bin exceeds shared memory");
    return;
  }
  const std::size_t M = static_cast<std::size_t>(grid.total());
  auto wl = bench::make_workload<float>(DIM, M, Dist::Rand, nf);
  vgpu::device_buffer<float> xg(dev, M), yg(dev, M), zg(dev, DIM == 3 ? M : 0);
  dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg[j] = spread::fold_rescale(wl.x[j], grid.nf[0]);
    yg[j] = spread::fold_rescale(wl.y[j], grid.nf[1]);
    if (DIM == 3) zg[j] = spread::fold_rescale(wl.z[j], grid.nf[2]);
  });
  spread::NuPoints<float> pts{xg.data(), yg.data(), DIM == 3 ? zg.data() : nullptr, M};
  spread::DeviceSort sort;
  spread::bin_sort<float>(dev, grid, bins, xg.data(), yg.data(),
                          DIM == 3 ? zg.data() : nullptr, M, sort);
  auto subs = spread::build_subproblems(dev, sort, 1024);
  vgpu::device_buffer<std::complex<float>> fw(dev, static_cast<std::size_t>(grid.total()));

  dev.counters.reset();
  for (auto _ : state) {
    vgpu::fill(dev, fw.span(), std::complex<float>(0, 0));
    spread::spread_sm<float>(dev, grid, bins, kp, pts, wl.c.data(), fw.data(), sort, subs,
                             1024);
  }
  state.counters["pts_per_s"] = benchmark::Counter(
      double(M) * double(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["glob_atomics_per_pt"] =
      double(dev.counters.global_atomics.load()) /
      (double(M) * double(state.iterations()));
}

}  // namespace

BENCHMARK(bin_size_sweep<2>)
    ->ArgsProduct({{8, 16, 32, 64}, {8, 16, 32, 64}, {1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(bin_size_sweep<3>)
    ->Args({8, 8, 2})
    ->Args({16, 16, 2})   // the paper's choice
    ->Args({16, 16, 4})
    ->Args({8, 8, 8})
    ->Args({32, 32, 2})
    ->Args({4, 4, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
