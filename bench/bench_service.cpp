// Service-layer throughput: request coalescing vs serial per-request
// executes at the tracked configuration (3D GM-sort type-1, rand, fp32,
// tol = 1e-6, M = --m points, 8 concurrent requests), plus an OPEN-LOOP
// load sweep of the serving-quality layer.
//
// The paper's many-vector batching (Sec. I-A) amortizes every per-point cost
// across a caller-assembled ntransf stack; the service layer assembles that
// stack automatically from independent requests. This bench measures exactly
// that conversion:
//
//   serial-8x            one Plan, one set_points, 8 B = 1 executes back to
//                        back (what 8 independent callers pay without the
//                        service);
//   service-8x           8 requests submitted concurrently to a NufftService
//                        and coalesced into batched executes under the FIXED
//                        20 ms window (steady state: the plan and point
//                        fingerprint are already resident, and the service
//                        plan runs point_cache = 2 — the plan-resident
//                        GM-sort tap table — with bitwise-identical output).
//                        Fixed window keeps this tracked metric comparable
//                        across PRs;
//   service-8x-adaptive  the same round under the adaptive window (closes
//                        early on batch-full / idle).
//
// The open-loop sweep (--open-m points per request) drives a fresh service
// with Poisson arrivals at a rate swept against the measured single-request
// service rate mu, for both window modes, under the Shed admission policy
// (max_outstanding = 32). Closed-loop benches can never overload a server —
// each client waits for its response — so shed rate, tail latency, and the
// batching that emerges from queueing are only visible open-loop. Emitted
// per (rate, mode): p50/p95/p99 latency, throughput, shed rate, mean batch,
// and the batch-size histogram. At rates past mu the adaptive window must
// match or beat the fixed window on throughput: under sustained load its
// early-close conditions (batch full / idle) only ever REMOVE dead waiting.
//
// Also verified and recorded: every completed response (closed- and
// open-loop) is bitwise-identical to its serial counterpart (the tiled
// pipeline's determinism guarantee surviving coalescing, admission, and
// windows); the exit code is nonzero on any mismatch.
//
// The service_shards family sweeps the sharded front tier (shards in
// {1, 2, 4}) against a single hot signature and a 4-signature mix: sticky
// routing must build each signature's plan exactly ONCE at any shard count
// (the single-signature stream shows plan_misses == 1 — zero duplicate plan
// constructions), and every response must be bitwise-identical both to the
// serial per-request reference and to the 1-shard outputs. Both checks feed
// the exit code. Throughput per shard count is recorded; on a multi-core
// host the mixed-signature stream is expected to scale with shards (each
// signature's shard owns a private device), while on one core the sweep
// only documents the routing overhead.
//
// Flags: --m N (closed-loop points, default 1e6), --reps R (best-of, 3),
//        --threads T (service dispatchers, default 2), --json PATH,
//        --open-m N (open-loop points/request, default 30000; 0 disables),
//        --open-requests K (arrivals per run, default 120),
//        --shard-m N (points/request in the shard sweep, default 120000;
//        0 disables).
#include <atomic>
#include <cmath>
#include <complex>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/plan.hpp"
#include "service/service.hpp"
#include "service/shard_router.hpp"
#include "vgpu/device.hpp"

using namespace cf;
namespace core = cf::core;
namespace service = cf::service;
using bench::Dist;
using bench::JsonReport;

namespace {

struct Config {
  std::vector<std::int64_t> N;
  std::size_t ntot = 0;
  bench::Workload<float> wl;
  double tol = 1e-6;
  int nreq = 8;
};

Config make_config(std::size_t M) {
  std::int64_t n = 1;
  while (8 * n * n * n < static_cast<std::int64_t>(M)) ++n;
  Config cfg;
  cfg.N = {n, n, n};
  cfg.ntot = static_cast<std::size_t>(n * n * n);
  cfg.wl = bench::make_workload<float>(3, M, Dist::Rand, 2 * n);
  return cfg;
}

core::Options plan_opts() {
  core::Options o;
  o.method = core::Method::GMSort;
  return o;
}

/// One open-loop run: `nreq` Poisson arrivals at `rate` req/s into a fresh
/// Shed-policy service, all requests sharing one (signature, points,
/// strengths) group with per-request outputs. A collector thread resolves
/// futures in submission order, stamping per-request latency at its own
/// future's resolution (in-order consumption can defer a stamp behind an
/// earlier in-flight request; within a coalesced group completions are
/// simultaneous, so the bias is small and identical across modes).
struct OpenResult {
  int submitted = 0, completed = 0, shed = 0;
  double wall_s = 0, p50_ms = 0, p95_ms = 0, p99_ms = 0;
  double mean_batch = 0;
  int max_batch = 0;
  std::string hist;
  bool bitwise = true;
};

OpenResult run_open_loop(vgpu::Device& dev, const Config& cfg, std::size_t M,
                         int nreq, double rate, bool adaptive,
                         const std::vector<std::complex<float>>& ref,
                         std::uint64_t seed) {
  service::ServiceConfig scfg;
  scfg.threads = 2;
  scfg.max_batch = 8;
  scfg.coalesce_window = std::chrono::milliseconds(3);
  scfg.adaptive_window = adaptive;
  scfg.max_outstanding = 32;
  scfg.admission = service::Admission::Shed;
  service::NufftService svc(dev, scfg);

  std::vector<std::vector<std::complex<float>>> out(
      static_cast<std::size_t>(nreq));
  std::vector<std::future<service::ExecReport>> futs(
      static_cast<std::size_t>(nreq));
  std::vector<std::chrono::steady_clock::time_point> at(
      static_cast<std::size_t>(nreq));
  std::atomic<int> n_submitted{0};

  OpenResult res;
  res.submitted = nreq;
  std::vector<double> lat_ms;
  std::vector<int> batch_of;  // per completed request
  auto t_end = std::chrono::steady_clock::time_point{};

  std::thread collector([&] {
    for (int i = 0; i < nreq; ++i) {
      while (n_submitted.load(std::memory_order_acquire) <= i)
        std::this_thread::yield();
      try {
        const auto rep = futs[static_cast<std::size_t>(i)].get();
        const auto done = std::chrono::steady_clock::now();
        t_end = done;
        lat_ms.push_back(std::chrono::duration<double, std::milli>(
                             done - at[static_cast<std::size_t>(i)])
                             .count());
        batch_of.push_back(rep.batch);
        ++res.completed;
        const auto& got = out[static_cast<std::size_t>(i)];
        for (std::size_t k = 0; k < got.size(); ++k)
          if (got[k] != ref[k]) {
            res.bitwise = false;
            break;
          }
      } catch (const service::OverloadedError&) {
        ++res.shed;
      }
    }
  });

  Rng arrivals(seed);
  const auto t0 = std::chrono::steady_clock::now();
  auto next = t0;
  for (int i = 0; i < nreq; ++i) {
    // Exponential inter-arrival times: a Poisson arrival process at `rate`.
    const double u = std::min(arrivals.uniform(0, 1), 1.0 - 1e-12);
    next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(-std::log(1.0 - u) / rate));
    std::this_thread::sleep_until(next);
    out[static_cast<std::size_t>(i)].assign(cfg.ntot, {});
    service::Request<float> req;
    req.type = 1;
    req.modes = cfg.N;
    req.tol = cfg.tol;
    req.opts = plan_opts();
    req.M = M;
    req.x = cfg.wl.xp();
    req.y = cfg.wl.yp();
    req.z = cfg.wl.zp();
    req.input = cfg.wl.c.data();
    req.output = out[static_cast<std::size_t>(i)].data();
    at[static_cast<std::size_t>(i)] = std::chrono::steady_clock::now();
    futs[static_cast<std::size_t>(i)] = svc.submit(req);
    n_submitted.store(i + 1, std::memory_order_release);
  }
  collector.join();

  res.wall_s = std::chrono::duration<double>(
                   (t_end == std::chrono::steady_clock::time_point{}
                        ? std::chrono::steady_clock::now()
                        : t_end) -
                   t0)
                   .count();
  res.p50_ms = bench::percentile(lat_ms, 50);
  res.p95_ms = bench::percentile(lat_ms, 95);
  res.p99_ms = bench::percentile(lat_ms, 99);
  // Batch-size histogram over completed requests: "1:3|2:8|8:96".
  std::vector<int> counts(9, 0);
  for (int b : batch_of) {
    res.max_batch = std::max(res.max_batch, b);
    counts[static_cast<std::size_t>(std::min(b, 8))] += 1;
  }
  double wsum = 0;
  for (int b = 1; b <= 8; ++b) {
    if (!counts[static_cast<std::size_t>(b)]) continue;
    if (!res.hist.empty()) res.hist += "|";
    res.hist += std::to_string(b) + ":" + std::to_string(counts[static_cast<std::size_t>(b)]);
    wsum += double(b) * counts[static_cast<std::size_t>(b)];
  }
  const auto st = svc.stats();
  res.mean_batch = st.batches ? double(st.batched_requests) / double(st.batches) : 0.0;
  (void)wsum;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t M = static_cast<std::size_t>(cli.get_int("m", 1000000));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int threads = static_cast<int>(cli.get_int("threads", 2));
  const std::size_t open_m =
      static_cast<std::size_t>(cli.get_int("open-m", 30000));
  const int open_requests = static_cast<int>(cli.get_int("open-requests", 120));
  const std::string json_path = cli.get("json", "BENCH_service.json");

  bench::banner(
      "Service coalescing: 8 concurrent requests vs 8 serial B=1 executes",
      "many-vector batching amortizes point handling across transforms "
      "(Sec. I-A); the service extends it across independent callers");

  Config cfg = make_config(M);
  const int B = cfg.nreq;
  std::printf("3D GM-sort type-1, rand, M=%zu, N=%lld^3, tol=%g, fp32, %d requests, "
              "%d service threads\n\n",
              M, static_cast<long long>(cfg.N[0]), cfg.tol, B, threads);

  // Per-request strength vectors and outputs.
  Rng rng(1234);
  std::vector<std::vector<std::complex<float>>> c(B), fserial(B), fsvc(B);
  for (int b = 0; b < B; ++b) {
    c[b].resize(M);
    for (auto& v : c[b])
      v = {float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1))};
    fserial[b].resize(cfg.ntot);
    fsvc[b].resize(cfg.ntot);
  }

  // ---- serial baseline: one plan, 8 B = 1 executes -------------------------
  vgpu::Device dev;
  core::Plan<float> plan(dev, 1, cfg.N, +1, cfg.tol, plan_opts());
  plan.set_points(M, cfg.wl.xp(), cfg.wl.yp(), cfg.wl.zp());
  double serial_s = 1e300;
  for (int r = 0; r <= reps; ++r) {  // first pass is warmup
    Timer t;
    for (int b = 0; b < B; ++b) plan.execute(c[b].data(), fserial[b].data());
    if (r > 0) serial_s = std::min(serial_s, t.seconds());
  }

  // ---- service: 8 concurrent submitters, coalesced executes ----------------
  // Runs once with the FIXED 20 ms window (the tracked service-8x metric,
  // comparable across PRs) and once with the adaptive window.
  bool bitwise = true;
  auto run_closed = [&](bool adaptive, double& best_s, int& max_batch,
                        service::ServiceStats& stats) {
    service::ServiceConfig scfg;
    scfg.threads = threads;
    scfg.max_batch = B;
    scfg.coalesce_window = std::chrono::milliseconds(20);
    scfg.adaptive_window = adaptive;
    service::NufftService svc(dev, scfg);

    auto round = [&] {
      std::vector<std::thread> submitters;
      std::vector<std::future<service::ExecReport>> futs(B);
      std::mutex mu;  // futures slot handoff only; submission itself is free
      for (int b = 0; b < B; ++b) {
        submitters.emplace_back([&, b] {
          service::Request<float> req;
          req.type = 1;
          req.modes = cfg.N;
          req.tol = cfg.tol;
          req.opts = plan_opts();
          req.M = M;
          req.x = cfg.wl.xp();
          req.y = cfg.wl.yp();
          req.z = cfg.wl.zp();
          req.input = c[b].data();
          req.output = fsvc[b].data();
          auto fut = svc.submit(req);
          std::lock_guard lk(mu);
          futs[b] = std::move(fut);
        });
      }
      for (auto& th : submitters) th.join();
      int mb = 0;
      for (auto& f : futs) mb = std::max(mb, f.get().batch);
      return mb;
    };

    round();  // warmup: builds the plan, loads the fingerprint
    best_s = 1e300;
    max_batch = 0;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      max_batch = std::max(max_batch, round());
      best_s = std::min(best_s, t.seconds());
    }
    stats = svc.stats();
    // Bitwise check: coalesced responses vs serial B = 1 executes.
    for (int b = 0; b < B; ++b)
      for (std::size_t i = 0; i < cfg.ntot; ++i)
        if (fsvc[b][i] != fserial[b][i]) {
          bitwise = false;
          return;
        }
  };

  double service_s = 1e300, adaptive_s = 1e300;
  int max_batch = 0, max_batch_ad = 0;
  service::ServiceStats st{}, st_ad{};
  run_closed(/*adaptive=*/false, service_s, max_batch, st);
  run_closed(/*adaptive=*/true, adaptive_s, max_batch_ad, st_ad);

  const double speedup = serial_s / service_s;
  Table t({"path", "8 req [s]", "Mpts/s (x8)", "speedup", "bitwise"});
  t.add_row({"serial-8x", Table::fmt(serial_s, 3),
             Table::fmt(double(B) * double(M) / serial_s / 1e6, 2), "1.00x", "-"});
  t.add_row({"service-8x", Table::fmt(service_s, 3),
             Table::fmt(double(B) * double(M) / service_s / 1e6, 2),
             Table::fmt(speedup, 2) + "x", bitwise ? "yes" : "NO"});
  t.add_row({"service-8x-adaptive", Table::fmt(adaptive_s, 3),
             Table::fmt(double(B) * double(M) / adaptive_s / 1e6, 2),
             Table::fmt(serial_s / adaptive_s, 2) + "x", bitwise ? "yes" : "NO"});
  t.print();
  std::printf("\nmax coalesced batch: %d (fixed) / %d (adaptive); "
              "setpts reuses: %llu; plan misses: %llu\n",
              max_batch, max_batch_ad,
              static_cast<unsigned long long>(st.setpts_reuses),
              static_cast<unsigned long long>(st.plan_misses));

  JsonReport json;
  for (int pass = 0; pass < 3; ++pass) {
    auto& rec = json.add();
    const double secs = pass == 0 ? serial_s : pass == 1 ? service_s : adaptive_s;
    rec.field("bench", "service3d")
        .field("dist", "rand")
        .field("dim", 3)
        .field("M", M)
        .field("requests", B)
        .field("tol", cfg.tol)
        .field("method", "GM-sort")
        .field("service_threads", threads)
        .field("path", pass == 0   ? "serial-8x"
                       : pass == 1 ? "service-8x"
                                   : "service-8x-adaptive")
        .field("exec_s", secs)
        .field("pts_per_s", double(B) * double(M) / secs)
        .field("speedup_vs_serial", pass == 0 ? 1.0 : serial_s / secs);
    if (pass == 1) {
      rec.field("bitwise_vs_serial", bitwise ? "true" : "false")
          .field("max_batch", max_batch)
          .field("setpts_reuses", st.setpts_reuses)
          .field("plan_misses", st.plan_misses);
    }
    if (pass == 2) rec.field("max_batch", max_batch_ad);
  }

  // ---- observability overhead: the tracked row, tracing ON ----------------
  // Tracing is OFF by default; metrics counters/histograms are always on and
  // already included in service-8x above. This rerun flips the global trace
  // switch (per-thread span rings + span emission on every hot-path stage)
  // and repeats the fixed-window closed-loop round, so the JSON trajectory
  // records the full-instrumentation overhead next to the baseline. The
  // bitwise check runs on the traced outputs too: observability must never
  // change output bits. A Chrome trace of the final round is exported for
  // chrome://tracing / Perfetto.
  {
    obs::set_enabled(true);
    obs::reset_trace();
    double traced_s = 1e300;
    int max_batch_tr = 0;
    service::ServiceStats st_tr{};
    run_closed(/*adaptive=*/false, traced_s, max_batch_tr, st_tr);
    obs::export_chrome_trace("BENCH_service_trace.json");
    obs::set_enabled(false);

    const double overhead = traced_s / service_s;
    Table to({"path", "8 req [s]", "vs service-8x", "bitwise"});
    to.add_row({"service-8x (obs off)", Table::fmt(service_s, 3), "1.00x", "-"});
    to.add_row({"service_obs (traced)", Table::fmt(traced_s, 3),
                Table::fmt(overhead, 3) + "x", bitwise ? "yes" : "NO"});
    std::printf("\nObservability overhead (CF_TRACE-equivalent, span rings on):\n");
    to.print();
    std::printf("trace written to BENCH_service_trace.json\n");

    auto& rec = json.add();
    rec.field("bench", "service_obs")
        .field("dist", "rand")
        .field("dim", 3)
        .field("M", M)
        .field("requests", B)
        .field("tol", cfg.tol)
        .field("method", "GM-sort")
        .field("service_threads", threads)
        .field("path", "service-8x-traced")
        .field("exec_s", traced_s)
        .field("pts_per_s", double(B) * double(M) / traced_s)
        .field("overhead_vs_untraced", overhead)
        .field("bitwise_vs_serial", bitwise ? "true" : "false");
  }

  // ---- plan-registry footprint: sigma = 2 vs sigma = 1.25 ------------------
  // The LRU registry (ServiceConfig::max_plans) is memory-bound in practice:
  // a resident plan's dominant allocation is its fine grid, so the registry's
  // effective capacity under a fixed device budget is set by sigma. The
  // sigma125 row pair records the per-plan resident bytes (plan + points) at
  // both sigmas on the tracked problem and how many such plans fit in 1 GB.
  {
    std::printf("\nPlan-registry footprint (plan + set_points resident bytes):\n");
    Table st2({"sigma", "w", "plan+pts MB", "plans per GB", "RAM vs sigma2"});
    double bytes2 = 0;
    for (double sigma : {2.0, 1.25}) {
      vgpu::Device pdev;  // fresh device: clean bytes_in_use accounting
      auto opts = plan_opts();
      opts.upsampfac = sigma;
      const std::size_t base = pdev.bytes_in_use();
      core::Plan<float> p(pdev, 1, cfg.N, +1, cfg.tol, opts);
      p.set_points(M, cfg.wl.xp(), cfg.wl.yp(), cfg.wl.zp());
      const double bytes = double(pdev.bytes_in_use() - base);
      if (sigma == 2.0) bytes2 = bytes;
      const double per_gb = std::floor(double(std::size_t{1} << 30) / bytes);
      st2.add_row({Table::fmt(sigma, 2), std::to_string(p.kernel_width()),
                   Table::fmt(bytes / 1048576.0, 1), Table::fmt(per_gb, 0),
                   Table::fmt(bytes / bytes2, 2) + "x"});
      auto& rec = json.add();
      rec.field("bench", sigma == 2.0 ? "service_sigma2" : "service_sigma125")
          .field("dist", "rand")
          .field("dim", 3)
          .field("M", M)
          .field("tol", cfg.tol)
          .field("method", "GM-sort")
          .field("sigma", sigma)
          .field("width", p.kernel_width())
          .field("plan_bytes", bytes)
          .field("plans_per_gb", per_gb)
          .field("plan_bytes_vs_sigma2", bytes / bytes2);
    }
    st2.print();
  }

  // ---- open-loop sweep: Poisson arrivals vs the measured service rate ------
  if (open_m > 0 && open_requests > 0) {
    Config ocfg = make_config(open_m);
    // Single-request service time mu^-1 on a warm plan (what one dispatcher
    // can serve without any batching).
    core::Plan<float> oplan(dev, 1, ocfg.N, +1, ocfg.tol, plan_opts());
    oplan.set_points(open_m, ocfg.wl.xp(), ocfg.wl.yp(), ocfg.wl.zp());
    std::vector<std::complex<float>> ref(ocfg.ntot);
    double t_one = 1e300;
    for (int r = 0; r < 3; ++r) {
      std::vector<std::complex<float>> cin = ocfg.wl.c;
      Timer tm;
      oplan.execute(cin.data(), ref.data());
      t_one = std::min(t_one, tm.seconds());
    }
    const double mu = 1.0 / t_one;  // serial service rate, req/s

    std::printf("\nOpen loop: M=%zu/request, %d Poisson arrivals, mu=%.1f req/s, "
                "window 3 ms, max_outstanding 32, shed policy\n",
                open_m, open_requests, mu);
    Table ot({"rate/mu", "window", "done", "shed", "thru [req/s]", "p50 [ms]",
              "p95 [ms]", "p99 [ms]", "mean batch", "bitwise"});
    const double ratios[] = {0.5, 1.0, 2.0, 4.0};
    std::uint64_t seed = 7;
    for (const double ratio : ratios) {
      for (const bool adaptive : {true, false}) {
        const auto r = run_open_loop(dev, ocfg, open_m, open_requests,
                                     ratio * mu, adaptive, ref, seed++);
        bitwise = bitwise && r.bitwise;
        const double thru = r.wall_s > 0 ? r.completed / r.wall_s : 0.0;
        ot.add_row({Table::fmt(ratio, 1), adaptive ? "adaptive" : "fixed",
                    std::to_string(r.completed), std::to_string(r.shed),
                    Table::fmt(thru, 1), Table::fmt(r.p50_ms, 1),
                    Table::fmt(r.p95_ms, 1), Table::fmt(r.p99_ms, 1),
                    Table::fmt(r.mean_batch, 2), r.bitwise ? "yes" : "NO"});
        auto& rec = json.add();
        rec.field("bench", "service_openloop")
            .field("dist", "rand")
            .field("dim", 3)
            .field("M", open_m)
            .field("requests", open_requests)
            .field("tol", ocfg.tol)
            .field("method", "GM-sort")
            .field("service_threads", 2)
            .field("window_us", std::int64_t{3000})
            .field("window_mode", adaptive ? "adaptive" : "fixed")
            .field("policy", "shed")
            .field("max_outstanding", std::int64_t{32})
            .field("rate_over_mu", ratio)
            .field("offered_rps", ratio * mu)
            .field("mu_rps", mu)
            .field("submitted", r.submitted)
            .field("completed", r.completed)
            .field("shed", r.shed)
            .field("shed_rate", r.submitted ? double(r.shed) / r.submitted : 0.0)
            .field("throughput_rps", thru)
            .field("p50_ms", r.p50_ms)
            .field("p95_ms", r.p95_ms)
            .field("p99_ms", r.p99_ms)
            .field("mean_batch", r.mean_batch)
            .field("max_batch", r.max_batch)
            .field("batch_hist", r.hist)
            .field("bitwise_vs_serial", r.bitwise ? "true" : "false");
      }
    }
    ot.print();
  }

  // ---- sharded tier: shards x {single hot signature, mixed signatures} -----
  const std::size_t shard_m =
      static_cast<std::size_t>(cli.get_int("shard-m", 120000));
  bool shard_ok = true;
  if (shard_m > 0) {
    const int kReq = 16, kSigs = 4, shard_reps = 2;
    // Four distinct signatures: different mode boxes, each with its own
    // point set and per-request strengths. The hot scenario streams only
    // signature 0; the mixed scenario round-robins all four.
    auto make_sig = [&](int delta) {
      Config c0 = make_config(shard_m);
      const std::int64_t n = c0.N[0] + 2 * delta;
      c0.N = {n, n, n};
      c0.ntot = static_cast<std::size_t>(n * n * n);
      c0.wl = bench::make_workload<float>(3, shard_m, Dist::Rand, 2 * n);
      return c0;
    };
    std::vector<Config> sigs;
    for (int i = 0; i < kSigs; ++i) sigs.push_back(make_sig(i));
    Rng srng(555);
    std::vector<std::vector<std::complex<float>>> scin(kReq);
    for (auto& ci : scin) {
      ci.resize(shard_m);
      for (auto& v : ci)
        v = {float(srng.uniform(-1, 1)), float(srng.uniform(-1, 1))};
    }

    std::printf("\nSharded tier: %d requests, shards x {hot, mixed %d signatures}, "
                "M=%zu/request\n",
                kReq, kSigs, shard_m);
    Table sht({"scenario", "shards", "16 req [s]", "Mpts/s", "vs 1 shard",
               "plan misses", "sticky", "bitwise"});

    for (const bool mixed : {false, true}) {
      const char* scen = mixed ? "mixed" : "hot";
      auto sig_of = [&](int b) { return mixed ? b % kSigs : 0; };

      // Serial per-request references (deterministic tiled pipeline: any
      // worker count yields the same bits as the shard devices).
      std::vector<std::vector<std::complex<float>>> ref(kReq);
      for (int s = 0; s < kSigs; ++s) {
        bool used = false;
        for (int b = 0; b < kReq; ++b) used = used || sig_of(b) == s;
        if (!used) continue;
        core::Plan<float> rplan(dev, 1, sigs[s].N, +1, cfg.tol, plan_opts());
        rplan.set_points(shard_m, sigs[s].wl.xp(), sigs[s].wl.yp(),
                         sigs[s].wl.zp());
        for (int b = 0; b < kReq; ++b) {
          if (sig_of(b) != s) continue;
          ref[b].assign(sigs[s].ntot, {});
          std::vector<std::complex<float>> cb = scin[b];
          rplan.execute(cb.data(), ref[b].data());
        }
      }

      std::vector<std::vector<std::complex<float>>> f1;  // 1-shard outputs
      double one_shard_s = 0;
      for (const int nsh : {1, 2, 4}) {
        service::ShardedConfig scfg;
        scfg.shards = nsh;
        scfg.shard.threads = threads;
        scfg.shard.max_batch = 8;
        service::ShardedNufftService svc(scfg);

        std::vector<std::vector<std::complex<float>>> fout(kReq);
        auto round = [&] {
          std::vector<std::thread> submitters;
          std::vector<std::future<service::ExecReport>> futs(kReq);
          std::mutex mu;
          for (int t4 = 0; t4 < 4; ++t4)
            submitters.emplace_back([&, t4] {
              for (int b = t4; b < kReq; b += 4) {
                const Config& sg = sigs[static_cast<std::size_t>(sig_of(b))];
                fout[b].assign(sg.ntot, {});
                service::Request<float> req;
                req.type = 1;
                req.modes = sg.N;
                req.tol = cfg.tol;
                req.opts = plan_opts();
                req.M = shard_m;
                req.x = sg.wl.xp();
                req.y = sg.wl.yp();
                req.z = sg.wl.zp();
                req.input = scin[b].data();
                req.output = fout[b].data();
                auto fut = svc.submit(req);
                std::lock_guard lk(mu);
                futs[b] = std::move(fut);
              }
            });
          for (auto& th : submitters) th.join();
          for (auto& f : futs) f.get();
        };

        round();  // warmup: plans built, fingerprints resident
        double best_s = 1e300;
        for (int r = 0; r < shard_reps; ++r) {
          Timer tm;
          round();
          best_s = std::min(best_s, tm.seconds());
        }
        const auto sst = svc.stats();

        bool bw = true;
        for (int b = 0; b < kReq && bw; ++b)
          bw = fout[b] == ref[b];
        if (nsh == 1) {
          f1 = fout;
          one_shard_s = best_s;
        } else {
          for (int b = 0; b < kReq && bw; ++b)
            bw = fout[b] == f1[b];  // any shard count, same bits
        }
        // Sticky routing: one plan per signature, at ANY shard count.
        const std::uint64_t want_misses = mixed ? kSigs : 1;
        const bool sticky_ok = sst.total.plan_misses == want_misses &&
                               sst.migrations == 0;
        shard_ok = shard_ok && bw && sticky_ok;

        sht.add_row({scen, std::to_string(nsh), Table::fmt(best_s, 3),
                     Table::fmt(double(kReq) * double(shard_m) / best_s / 1e6, 2),
                     Table::fmt(one_shard_s / best_s, 2) + "x",
                     std::to_string(sst.total.plan_misses),
                     std::to_string(sst.sticky_hits),
                     bw && sticky_ok ? "yes" : "NO"});
        auto& rec = json.add();
        rec.field("bench", "service_shards")
            .field("dist", "rand")
            .field("dim", 3)
            .field("M", shard_m)
            .field("requests", kReq)
            .field("tol", cfg.tol)
            .field("method", "GM-sort")
            .field("scenario", scen)
            .field("signatures", mixed ? kSigs : 1)
            .field("shards", nsh)
            .field("service_threads", threads)
            .field("exec_s", best_s)
            .field("pts_per_s", double(kReq) * double(shard_m) / best_s)
            .field("speedup_vs_1shard", one_shard_s / best_s)
            .field("plan_misses", sst.total.plan_misses)
            .field("setpts_reuses", sst.total.setpts_reuses)
            .field("sticky_hits", sst.sticky_hits)
            .field("migrations", sst.migrations)
            .field("bitwise_vs_serial_and_1shard", bw ? "true" : "false");
      }
    }
    sht.print();
    if (!shard_ok)
      std::printf("sharded sweep FAILED its bitwise/sticky checks\n");
  }

  json.write(json_path);
  std::printf("wrote %s\n", json_path.c_str());
  return bitwise && shard_ok ? 0 : 1;
}
