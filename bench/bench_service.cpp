// Service-layer throughput: request coalescing vs serial per-request
// executes at the tracked configuration (3D GM-sort type-1, rand, fp32,
// tol = 1e-6, M = --m points, 8 concurrent requests).
//
// The paper's many-vector batching (Sec. I-A) amortizes every per-point cost
// across a caller-assembled ntransf stack; the service layer assembles that
// stack automatically from independent requests. This bench measures exactly
// that conversion:
//
//   serial-8x     one Plan, one set_points, 8 B = 1 executes back to back
//                 (what 8 independent callers pay without the service);
//   service-8x    8 requests submitted concurrently to a NufftService and
//                 coalesced into batched executes (steady state: the plan
//                 and point fingerprint are already resident, and the
//                 service plan runs point_cache = 2 — the plan-resident
//                 GM-sort tap table — with bitwise-identical output).
//
// Also verified and recorded: every service response is bitwise-identical to
// its serial counterpart (the tiled pipeline's determinism guarantee
// surviving coalescing), and the registry served the round without plan or
// set_points rebuilds. Results append to BENCH_service.json.
//
// Flags: --m N (points, default 1e6), --reps R (best-of, default 3),
//        --threads T (service dispatchers, default 2), --json PATH.
#include <complex>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/plan.hpp"
#include "service/service.hpp"
#include "vgpu/device.hpp"

using namespace cf;
namespace core = cf::core;
namespace service = cf::service;
using bench::Dist;
using bench::JsonReport;

namespace {

struct Config {
  std::vector<std::int64_t> N;
  std::size_t ntot = 0;
  bench::Workload<float> wl;
  double tol = 1e-6;
  int nreq = 8;
};

Config make_config(std::size_t M) {
  std::int64_t n = 1;
  while (8 * n * n * n < static_cast<std::int64_t>(M)) ++n;
  Config cfg;
  cfg.N = {n, n, n};
  cfg.ntot = static_cast<std::size_t>(n * n * n);
  cfg.wl = bench::make_workload<float>(3, M, Dist::Rand, 2 * n);
  return cfg;
}

core::Options plan_opts() {
  core::Options o;
  o.method = core::Method::GMSort;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::size_t M = static_cast<std::size_t>(cli.get_int("m", 1000000));
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const int threads = static_cast<int>(cli.get_int("threads", 2));
  const std::string json_path = cli.get("json", "BENCH_service.json");

  bench::banner(
      "Service coalescing: 8 concurrent requests vs 8 serial B=1 executes",
      "many-vector batching amortizes point handling across transforms "
      "(Sec. I-A); the service extends it across independent callers");

  Config cfg = make_config(M);
  const int B = cfg.nreq;
  std::printf("3D GM-sort type-1, rand, M=%zu, N=%lld^3, tol=%g, fp32, %d requests, "
              "%d service threads\n\n",
              M, static_cast<long long>(cfg.N[0]), cfg.tol, B, threads);

  // Per-request strength vectors and outputs.
  Rng rng(1234);
  std::vector<std::vector<std::complex<float>>> c(B), fserial(B), fsvc(B);
  for (int b = 0; b < B; ++b) {
    c[b].resize(M);
    for (auto& v : c[b])
      v = {float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1))};
    fserial[b].resize(cfg.ntot);
    fsvc[b].resize(cfg.ntot);
  }

  // ---- serial baseline: one plan, 8 B = 1 executes -------------------------
  vgpu::Device dev;
  core::Plan<float> plan(dev, 1, cfg.N, +1, cfg.tol, plan_opts());
  plan.set_points(M, cfg.wl.xp(), cfg.wl.yp(), cfg.wl.zp());
  double serial_s = 1e300;
  for (int r = 0; r <= reps; ++r) {  // first pass is warmup
    Timer t;
    for (int b = 0; b < B; ++b) plan.execute(c[b].data(), fserial[b].data());
    if (r > 0) serial_s = std::min(serial_s, t.seconds());
  }

  // ---- service: 8 concurrent submitters, coalesced executes ----------------
  service::ServiceConfig scfg;
  scfg.threads = threads;
  scfg.max_batch = B;
  scfg.coalesce_window = std::chrono::milliseconds(20);
  service::NufftService svc(dev, scfg);

  auto round = [&] {
    std::vector<std::thread> submitters;
    std::vector<std::future<service::ExecReport>> futs(B);
    std::mutex mu;  // futures slot handoff only; submission itself is free
    for (int b = 0; b < B; ++b) {
      submitters.emplace_back([&, b] {
        service::Request<float> req;
        req.type = 1;
        req.modes = cfg.N;
        req.tol = cfg.tol;
        req.opts = plan_opts();
        req.M = M;
        req.x = cfg.wl.xp();
        req.y = cfg.wl.yp();
        req.z = cfg.wl.zp();
        req.input = c[b].data();
        req.output = fsvc[b].data();
        auto fut = svc.submit(req);
        std::lock_guard lk(mu);
        futs[b] = std::move(fut);
      });
    }
    for (auto& th : submitters) th.join();
    int max_batch = 0;
    for (auto& f : futs) max_batch = std::max(max_batch, f.get().batch);
    return max_batch;
  };

  round();  // warmup: builds the plan, loads the fingerprint
  double service_s = 1e300;
  int max_batch = 0;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    max_batch = std::max(max_batch, round());
    service_s = std::min(service_s, t.seconds());
  }

  // Bitwise check: coalesced responses vs serial B = 1 executes.
  bool bitwise = true;
  for (int b = 0; b < B && bitwise; ++b)
    for (std::size_t i = 0; i < cfg.ntot; ++i)
      if (fsvc[b][i] != fserial[b][i]) {
        bitwise = false;
        break;
      }

  const auto st = svc.stats();
  const double speedup = serial_s / service_s;
  Table t({"path", "8 req [s]", "Mpts/s (x8)", "speedup", "bitwise"});
  t.add_row({"serial-8x", Table::fmt(serial_s, 3),
             Table::fmt(double(B) * double(M) / serial_s / 1e6, 2), "1.00x", "-"});
  t.add_row({"service-8x", Table::fmt(service_s, 3),
             Table::fmt(double(B) * double(M) / service_s / 1e6, 2),
             Table::fmt(speedup, 2) + "x", bitwise ? "yes" : "NO"});
  t.print();
  std::printf("\nmax coalesced batch: %d; batches: %llu; setpts reuses: %llu; "
              "plan misses: %llu\n",
              max_batch, static_cast<unsigned long long>(st.batches),
              static_cast<unsigned long long>(st.setpts_reuses),
              static_cast<unsigned long long>(st.plan_misses));

  JsonReport json;
  for (int pass = 0; pass < 2; ++pass) {
    auto& rec = json.add();
    rec.field("bench", "service3d")
        .field("dist", "rand")
        .field("dim", 3)
        .field("M", M)
        .field("requests", B)
        .field("tol", cfg.tol)
        .field("method", "GM-sort")
        .field("service_threads", threads)
        .field("path", pass == 0 ? "serial-8x" : "service-8x")
        .field("exec_s", pass == 0 ? serial_s : service_s)
        .field("pts_per_s",
               double(B) * double(M) / (pass == 0 ? serial_s : service_s))
        .field("speedup_vs_serial", pass == 0 ? 1.0 : speedup);
    if (pass == 1) {
      rec.field("bitwise_vs_serial", bitwise ? "true" : "false")
          .field("max_batch", max_batch)
          .field("setpts_reuses", st.setpts_reuses)
          .field("plan_misses", st.plan_misses);
    }
  }
  json.write(json_path);
  std::printf("wrote %s\n", json_path.c_str());
  return bitwise ? 0 : 1;
}
