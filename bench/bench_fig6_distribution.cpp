// Fig. 6 reproduction: sensitivity to the nonuniform point distribution.
//
// 2D type 1 and type 2 at eps = 1e-2, rho = 1, sweeping the number of modes
// N per axis, comparing "rand" against "cluster" for all libraries (fp32).
// Annotations give the exec-time speedup of cuFINUFFT (SM for type 1,
// GM-sort for type 2) over FINUFFT, as in the paper's figure.
//
// Paper shape to reproduce:
//   - type 1: cuFINUFFT(SM), FINUFFT, gpuNUFFT are distribution-robust;
//     cuFINUFFT(GM-sort) slows ~3x on cluster; CUNFFT slows ~200x
//   - type 2: clustering is much weaker; cuFINUFFT becomes 3-4x *faster*
//     on cluster (reads coalesce perfectly)
//
// Flags: --reps, --full (paper N range up to 2^11).
#include <cstdio>

#include "libs.hpp"

using namespace cf;
using namespace cf::bench;

namespace {

void run_panel(vgpu::Device& dev, ThreadPool& pool, int type, Dist dist,
               const std::vector<std::int64_t>& sizes, int reps) {
  std::printf("\n--- 2D Type %d, %s, rho=1, eps=1e-2 (fp32) --- [exec ns/pt]\n", type,
              dist_name(dist));
  Table t({"N/axis", "M", "finufft", "cufinufft(SM)", "cufinufft(GM-sort)", "cunfft",
           "gpunufft", "cufinufft spdup"});
  const double tol = 1e-2;
  for (auto Naxis : sizes) {
    std::vector<std::int64_t> N(2, Naxis);
    const std::size_t M = static_cast<std::size_t>(4 * Naxis * Naxis);  // rho=1
    auto wl = make_workload<double>(2, M, dist, 2 * Naxis);
    auto gt = make_ground_truth(pool, wl, N);

    double vals[5] = {-1, -1, -1, -1, -1};
    const Lib libs[5] = {Lib::Finufft, Lib::CufinufftSM, Lib::CufinufftGMSort,
                         Lib::Cunfft, Lib::Gpunufft};
    for (int i = 0; i < 5; ++i) {
      if (type == 2 && libs[i] == Lib::CufinufftSM) continue;
      const auto r = run_lib<float>(libs[i], dev, pool, type, N, tol, wl, gt, reps);
      if (r.ok) vals[i] = r.exec;
    }
    const double cuf = type == 1 ? vals[1] : vals[2];
    t.add_row({std::to_string(Naxis), Table::fmt_sci(double(M), 1),
               vals[0] < 0 ? "-" : fmt_ns(vals[0], M),
               vals[1] < 0 ? "-" : fmt_ns(vals[1], M),
               vals[2] < 0 ? "-" : fmt_ns(vals[2], M),
               vals[3] < 0 ? "-" : fmt_ns(vals[3], M),
               vals[4] < 0 ? "-" : fmt_ns(vals[4], M),
               (cuf > 0 && vals[0] > 0) ? Table::fmt(vals[0] / cuf, 1) + "x" : "-"});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool full = cli.has("full");
  const int reps = static_cast<int>(cli.get_int("reps", 2));

  banner("Fig. 6 — 2D type 1/2 vs N, rand vs cluster (eps = 1e-2, fp32)",
         "SM and FINUFFT distribution-robust; GM-sort ~3x slower on cluster; "
         "CUNFFT up to ~200x slower on clustered type 1; type 2 insensitive");

  vgpu::Device dev;
  ThreadPool pool;
  const std::vector<std::int64_t> sizes =
      full ? std::vector<std::int64_t>{64, 128, 256, 512, 1024, 2048}
           : std::vector<std::int64_t>{64, 128, 256, 512};

  for (int type : {1, 2})
    for (Dist dist : {Dist::Rand, Dist::Cluster}) run_panel(dev, pool, type, dist, sizes, reps);
  return 0;
}
