// Figs. 4+5 reproduction: single-precision library comparison vs accuracy.
//
// For 2D (N=512 default, paper 1000) and 3D (N=64 default, paper 100) with
// M = 1e6 "rand" points (paper 1e7), sweep the requested tolerance and report
// for each library the achieved relative l2 error (x-axis of the paper's
// plots), "total+mem" time (Fig. 4) and "exec" time (Fig. 5) per point.
//
// Paper shape to reproduce:
//   - type 1: cuFINUFFT (SM) fastest at every accuracy; exec ~10x (2D) and
//     3-12x (3D) over FINUFFT
//   - type 2: cuFINUFFT fastest except CUNFFT comparable at 2D low accuracy;
//     exec 4-7x (2D) / 6-8x (3D) over FINUFFT
//   - gpuNUFFT's error never reaches below ~1e-3
//
// Flags: --n2d, --n3d, --m, --reps, --full (paper sizes).
#include <cstdio>

#include "libs.hpp"

using namespace cf;
using namespace cf::bench;

namespace {

void run_panel(vgpu::Device& dev, ThreadPool& pool, int dim, int type, std::int64_t Naxis,
               std::size_t M, const std::vector<double>& tols, int reps) {
  std::printf("\n--- %dD Type %d, N=%lld^%d, M=%.1e, rand (fp32) ---\n", dim, type,
              (long long)Naxis, dim, double(M));
  std::vector<std::int64_t> N(static_cast<std::size_t>(dim), Naxis);
  auto wl = make_workload<double>(dim, M, Dist::Rand, 2 * Naxis);
  auto gt = make_ground_truth(pool, wl, N);

  Table t({"library", "req tol", "rel l2 err", "total+mem ns/pt", "total ns/pt",
           "exec ns/pt"});
  const std::vector<Lib> libs = {Lib::Finufft, Lib::CufinufftSM, Lib::CufinufftGMSort,
                                 Lib::Cunfft, Lib::Gpunufft};
  for (double tol : tols) {
    for (Lib lib : libs) {
      if (type == 2 && lib == Lib::CufinufftSM) continue;  // same as GM-sort
      const auto r = run_lib<float>(lib, dev, pool, type, N, tol, wl, gt, reps);
      if (!r.ok) {
        t.add_row({lib_name(lib), Table::fmt_sci(tol, 0), "unsupported", "-", "-", "-"});
        continue;
      }
      t.add_row({lib_name(lib), Table::fmt_sci(tol, 0), Table::fmt_sci(r.err, 1),
                 fmt_ns(r.total_mem, M), fmt_ns(r.total, M), fmt_ns(r.exec, M)});
    }
  }
  t.print();
}

/// Sigma ablation (not in the paper's figures): the same accuracy sweep with
/// the fine grid at sigma = 2 vs sigma = 1.25. The low-upsampling mode pays a
/// wider kernel (w ~ 1.6x) to shrink the fine grid 2^dim/1.25^dim-fold; both
/// settings must land on the requested tolerance. Baselines are skipped —
/// their kernels are tuned for sigma = 2 only.
void run_sigma_ablation(vgpu::Device& dev, ThreadPool& pool, int dim,
                        std::int64_t Naxis, std::size_t M,
                        const std::vector<double>& tols, int reps) {
  std::printf("\n--- %dD Type 1 sigma ablation, N=%lld^%d, M=%.1e, rand (fp32) ---\n",
              dim, (long long)Naxis, dim, double(M));
  std::vector<std::int64_t> N(static_cast<std::size_t>(dim), Naxis);
  auto wl = make_workload<double>(dim, M, Dist::Rand, 2 * Naxis);
  auto gt = make_ground_truth(pool, wl, N);

  Table t({"library", "sigma", "req tol", "rel l2 err", "total ns/pt",
           "exec ns/pt"});
  for (double tol : tols) {
    for (double sigma : {2.0, 1.25}) {
      for (Lib lib : {Lib::CufinufftGMSort, Lib::Finufft}) {
        const auto r = run_lib<float>(lib, dev, pool, 1, N, tol, wl, gt, reps, sigma);
        if (!r.ok) {
          t.add_row({lib_name(lib), Table::fmt(sigma, 2), Table::fmt_sci(tol, 0),
                     "unsupported", "-", "-"});
          continue;
        }
        t.add_row({lib_name(lib), Table::fmt(sigma, 2), Table::fmt_sci(tol, 0),
                   Table::fmt_sci(r.err, 1), fmt_ns(r.total, M), fmt_ns(r.exec, M)});
      }
    }
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool full = cli.has("full");
  const int reps = static_cast<int>(cli.get_int("reps", 2));
  const std::int64_t n2d = cli.get_int("n2d", full ? 1000 : 512);
  const std::int64_t n3d = cli.get_int("n3d", full ? 100 : 64);
  const std::size_t M =
      static_cast<std::size_t>(cli.get_int("m", full ? 10000000 : 1000000));

  banner("Figs. 4+5 — single-precision library comparison vs accuracy",
         "cuFINUFFT fastest for type 1 at all accuracies (SM best); type 2 "
         "fastest except CUNFFT ties at 2D low accuracy; gpuNUFFT floors at ~1e-3");

  vgpu::Device dev;
  ThreadPool pool;
  const std::vector<double> tols = {1e-1, 1e-2, 1e-3, 1e-4, 1e-5};

  for (int type : {1, 2}) run_panel(dev, pool, 2, type, n2d, M, tols, reps);
  for (int type : {1, 2}) run_panel(dev, pool, 3, type, n3d, M, tols, reps);
  run_sigma_ablation(dev, pool, 2, n2d, M, tols, reps);
  run_sigma_ablation(dev, pool, 3, n3d, M, tols, reps);
  return 0;
}
