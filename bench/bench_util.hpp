// Shared helpers for the benchmark binaries: workload generation matching the
// paper's "rand" and "cluster" tasks (Sec. IV), timing wrappers, and common
// CLI flags. Every bench runs with scaled-down defaults (the substrate is a
// simulator, not a V100) and accepts --scale/--m/--reps to grow problems.
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace cf::bench {

/// Machine-readable benchmark output: collects flat records and writes a
/// JSON array (one object per record) next to the human-readable tables, so
/// the perf trajectory can be tracked across PRs (e.g. BENCH_spread.json).
class JsonReport {
 public:
  class Record {
   public:
    Record& field(const std::string& key, const std::string& v) {
      kv_.emplace_back(key, "\"" + escape(v) + "\"");
      return *this;
    }
    Record& field(const std::string& key, const char* v) {
      return field(key, std::string(v));
    }
    Record& field(const std::string& key, double v) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.9g", v);
      kv_.emplace_back(key, buf);
      return *this;
    }
    Record& field(const std::string& key, std::int64_t v) {
      kv_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Record& field(const std::string& key, std::size_t v) {
      kv_.emplace_back(key, std::to_string(v));
      return *this;
    }
    Record& field(const std::string& key, int v) {
      return field(key, static_cast<std::int64_t>(v));
    }

   private:
    friend class JsonReport;
    static std::string escape(const std::string& s) {
      std::string out;
      for (char ch : s) {
        if (ch == '"' || ch == '\\') out.push_back('\\');
        out.push_back(ch);
      }
      return out;
    }
    std::vector<std::pair<std::string, std::string>> kv_;
  };

  Record& add() { return records_.emplace_back(); }
  bool empty() const { return records_.empty(); }

  /// Writes the array; returns false (and warns) if the file cannot open.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (std::size_t r = 0; r < records_.size(); ++r) {
      std::fprintf(f, "  {");
      const auto& kv = records_[r].kv_;
      for (std::size_t i = 0; i < kv.size(); ++i)
        std::fprintf(f, "%s\"%s\": %s", i ? ", " : "", kv[i].first.c_str(),
                     kv[i].second.c_str());
      std::fprintf(f, "}%s\n", r + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<Record> records_;
};

/// The paper's two extreme nonuniform point distributions.
enum class Dist { Rand, Cluster };

inline const char* dist_name(Dist d) { return d == Dist::Rand ? "rand" : "cluster"; }

/// Nonuniform points in the NUFFT domain [-pi, pi)^dim plus strengths.
template <typename T>
struct Workload {
  std::vector<T> x, y, z;
  std::vector<std::complex<T>> c;
  std::size_t M = 0;

  const T* xp() const { return x.data(); }
  const T* yp() const { return y.empty() ? nullptr : y.data(); }
  const T* zp() const { return z.empty() ? nullptr : z.data(); }
};

/// Generates M points: "rand" iid over the whole box; "cluster" iid in
/// [0, 8h]^d with h the fine-grid spacing of a grid with nf points per axis
/// (paper Sec. IV "Tasks").
template <typename T>
Workload<T> make_workload(int dim, std::size_t M, Dist dist, std::int64_t nf_for_cluster,
                          std::uint64_t seed = 42) {
  Workload<T> wl;
  wl.M = M;
  wl.x.resize(M);
  if (dim >= 2) wl.y.resize(M);
  if (dim >= 3) wl.z.resize(M);
  wl.c.resize(M);
  Rng rng(seed);
  const double pi = 3.141592653589793;
  const double h = 2.0 * pi / double(nf_for_cluster);
  auto coord = [&]() {
    return static_cast<T>(dist == Dist::Rand ? rng.uniform(-pi, pi)
                                             : rng.uniform(-pi, -pi + 8.0 * h));
  };
  for (std::size_t j = 0; j < M; ++j) {
    wl.x[j] = coord();
    if (dim >= 2) wl.y[j] = coord();
    if (dim >= 3) wl.z[j] = coord();
    wl.c[j] = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }
  return wl;
}

/// Gaussian-clump distribution for load-imbalance studies: `clumps` centers
/// iid over the box, each point assigned round-robin to a center and placed
/// Gaussian around it (sigma = sigma_cells fine-grid cells, Box-Muller over
/// the Rng uniforms), wrapped into [-pi, pi). With a handful of clumps and a
/// small sigma nearly every point lands in a few bins — the adversarial case
/// for any per-tile spread schedule.
template <typename T>
Workload<T> make_clumped_workload(int dim, std::size_t M, std::size_t clumps,
                                  std::int64_t nf, double sigma_cells,
                                  std::uint64_t seed = 47) {
  Workload<T> wl;
  wl.M = M;
  wl.x.resize(M);
  if (dim >= 2) wl.y.resize(M);
  if (dim >= 3) wl.z.resize(M);
  wl.c.resize(M);
  Rng rng(seed);
  const double pi = 3.141592653589793;
  const double sigma = sigma_cells * 2.0 * pi / double(nf);
  std::vector<double> centers(clumps * 3);
  for (auto& v : centers) v = rng.uniform(-pi, pi);
  auto gauss = [&]() {
    const double u1 = std::max(rng.uniform(0, 1), 1e-12);
    const double u2 = rng.uniform(0, 1);
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * pi * u2);
  };
  auto wrap = [&](double a) {
    while (a >= pi) a -= 2.0 * pi;
    while (a < -pi) a += 2.0 * pi;
    return static_cast<T>(a);
  };
  for (std::size_t j = 0; j < M; ++j) {
    const double* ctr = &centers[(j % clumps) * 3];
    wl.x[j] = wrap(ctr[0] + sigma * gauss());
    if (dim >= 2) wl.y[j] = wrap(ctr[1] + sigma * gauss());
    if (dim >= 3) wl.z[j] = wrap(ctr[2] + sigma * gauss());
    wl.c[j] = {static_cast<T>(rng.uniform(-1, 1)), static_cast<T>(rng.uniform(-1, 1))};
  }
  return wl;
}

/// Percentile over raw samples — the shared cf::percentile from
/// common/clock.hpp (one timing utility for bench, Breakdown stopwatches,
/// and the obs histograms), re-exposed under the bench namespace.
using cf::percentile;

/// ns per nonuniform point from a seconds measurement.
inline double ns_per_pt(double seconds, std::size_t M) {
  return seconds * 1e9 / double(M);
}

inline std::string fmt_ns(double seconds, std::size_t M) {
  return Table::fmt(ns_per_pt(seconds, M), 1);
}

/// Standard bench preamble: prints what is being reproduced.
inline void banner(const char* experiment, const char* paper_claim) {
  std::printf("=====================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("Absolute times are simulator times (no GPU here); compare *shapes*:\n");
  std::printf("method ranking, crossovers, and distribution sensitivity.\n");
  std::printf("=====================================================================\n");
}

}  // namespace cf::bench
