// Fig. 2 reproduction: spreading method comparison (GM vs GM-sort vs SM).
//
// Execution time per nonuniform point vs fine-grid size, for "rand" and
// "cluster" distributions, 2D and 3D, density rho = 1, eps = 1e-5 (w = 6),
// single precision. "total" includes the bin-sort/subproblem precomputation;
// "spread" excludes it. Annotations report speedup over the GM baseline.
//
// Paper shape to reproduce:
//   - rand, large grids: GM-sort beats GM (3.9x in 2D, 7.6x in 3D at the top)
//   - rand, small grids: sorting brings no benefit
//   - cluster: sorting alone does not help; SM wins big (up to 12.8x in 2D)
//   - SM's throughput is distribution-robust (rand ~ cluster)
//
// A final section benchmarks the width-specialized SIMD fast path against the
// runtime-width scalar fallback (3D SM, M = 1e6, tol = 1e-6, fp32 — the
// tracked configuration), with and without the Horner kernel table.
//
// All rows are also emitted as machine-readable JSON (--json <path>, default
// BENCH_spread.json) so the perf trajectory is tracked across PRs.
//
// Flags: --m2d <pts> --m3d <pts> (override rho=1), --reps N, --full (paper
// grid range), --mfast N (fast-path section size), --json <path>.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <tuple>
#include <utility>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "core/plan.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/primitives.hpp"
#include "vgpu/device.hpp"

using namespace cf;
using bench::Dist;

namespace {

struct Row {
  double spread_gm, total_sort, spread_sort, total_sm, spread_sm;
};

Row run_case(vgpu::Device& dev, int dim, std::int64_t nf, Dist dist, int reps) {
  const auto kp = spread::KernelParams<float>::from_width(6);  // eps = 1e-5
  spread::GridSpec grid;
  grid.dim = dim;
  for (int d = 0; d < dim; ++d) grid.nf[d] = nf;
  const auto bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(dim));
  const std::size_t M = static_cast<std::size_t>(grid.total());  // rho = 1

  auto wl = bench::make_workload<float>(dim, M, dist, nf);
  // Fold-rescale once (plan-stage work in the library).
  vgpu::device_buffer<float> xg(dev, M), yg(dev, dim >= 2 ? M : 0),
      zg(dev, dim >= 3 ? M : 0);
  dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg[j] = spread::fold_rescale(wl.x[j], grid.nf[0]);
    if (dim >= 2) yg[j] = spread::fold_rescale(wl.y[j], grid.nf[1]);
    if (dim >= 3) zg[j] = spread::fold_rescale(wl.z[j], grid.nf[2]);
  });
  spread::NuPoints<float> pts{xg.data(), dim >= 2 ? yg.data() : nullptr,
                              dim >= 3 ? zg.data() : nullptr, M};
  vgpu::device_buffer<std::complex<float>> fw(dev, static_cast<std::size_t>(grid.total()));

  auto zero = [&] { vgpu::fill(dev, fw.span(), std::complex<float>(0, 0)); };

  Row r{};
  // GM: no precomputation; spread == total.
  r.spread_gm = time_best([&] {
    zero();
    spread::spread_gm<float>(dev, grid, kp, pts, wl.c.data(), fw.data(), nullptr);
  }, reps);

  // GM-sort: sort precomputation + sorted spread.
  spread::DeviceSort sort;
  const double sort_time = time_best([&] {
    spread::bin_sort<float>(dev, grid, bins, xg.data(), pts.yg, pts.zg, M, sort);
  }, reps);
  r.spread_sort = time_best([&] {
    zero();
    spread::spread_gm<float>(dev, grid, kp, pts, wl.c.data(), fw.data(),
                             sort.order.data());
  }, reps);
  r.total_sort = sort_time + r.spread_sort;

  // SM: sort + subproblem setup precomputation + shared-memory spread.
  if (spread::sm_fits<float>(dev, grid, bins, kp.w)) {
    spread::SubprobSetup subs;
    const double setup_time = time_best([&] {
      subs = spread::build_subproblems(dev, sort, 1024);
    }, reps);
    r.spread_sm = time_best([&] {
      zero();
      spread::spread_sm<float>(dev, grid, bins, kp, pts, wl.c.data(), fw.data(), sort,
                               subs, 1024);
    }, reps);
    r.total_sm = sort_time + setup_time + r.spread_sm;
  } else {
    r.spread_sm = r.total_sm = -1;
  }
  return r;
}

void json_row(bench::JsonReport& json, const char* section, Dist dist, int dim,
              std::int64_t nf, std::size_t M, double tol, const char* method,
              const char* path, double spread_s, double total_s) {
  auto& rec = json.add();
  rec.field("bench", section)
      .field("dist", bench::dist_name(dist))
      .field("dim", dim)
      .field("nf", static_cast<std::int64_t>(nf))
      .field("M", M)
      .field("tol", tol)
      .field("method", method)
      .field("path", path)
      .field("spread_s", spread_s)
      .field("pts_per_s", spread_s > 0 ? double(M) / spread_s : 0.0);
  if (total_s >= 0) rec.field("total_s", total_s);
}

void run_sweep(vgpu::Device& dev, int dim, const std::vector<std::int64_t>& sizes,
               Dist dist, int reps, bench::JsonReport& json) {
  std::printf("\n--- %dD %s, rho=1, eps=1e-5 (fp32) --- [ns per nonuniform point]\n", dim,
              bench::dist_name(dist));
  Table t({"nf/axis", "M", "spread GM", "spread GM-sort", "total GM-sort", "spread SM",
           "total SM", "GM-sort spdup", "SM spdup"});
  for (auto nf : sizes) {
    const Row r = run_case(dev, dim, nf, dist, reps);
    std::size_t M = 1;
    for (int d = 0; d < dim; ++d) M *= static_cast<std::size_t>(nf);
    t.add_row({std::to_string(nf), Table::fmt_sci(double(M), 1),
               bench::fmt_ns(r.spread_gm, M), bench::fmt_ns(r.spread_sort, M),
               bench::fmt_ns(r.total_sort, M),
               r.spread_sm < 0 ? "n/a" : bench::fmt_ns(r.spread_sm, M),
               r.total_sm < 0 ? "n/a" : bench::fmt_ns(r.total_sm, M),
               Table::fmt(r.spread_gm / r.spread_sort, 1) + "x",
               r.spread_sm < 0 ? "n/a" : Table::fmt(r.spread_gm / r.spread_sm, 1) + "x"});
    json_row(json, "fig2", dist, dim, nf, M, 1e-5, "GM", "fast", r.spread_gm, -1);
    json_row(json, "fig2", dist, dim, nf, M, 1e-5, "GM-sort", "fast", r.spread_sort,
             r.total_sort);
    if (r.spread_sm >= 0)
      json_row(json, "fig2", dist, dim, nf, M, 1e-5, "SM", "fast", r.spread_sm,
               r.total_sm);
  }
  t.print();
}

/// Fast-path ablation at the tracked configuration: 3D SM spread, rand,
/// tol = 1e-6 (w = 7), single precision. Compares the runtime-width scalar
/// fallback (the pre-fast-path pipeline) against the width-specialized SIMD
/// kernels, with direct exp/sqrt and with the padded Horner table.
void run_fastpath(vgpu::Device& dev, std::size_t M, int reps, bench::JsonReport& json) {
  const double tol = 1e-6;
  const int w = spread::width_from_tol(tol);
  spread::GridSpec grid;
  grid.dim = 3;
  // rho ~= 1: cube the cube root of M.
  std::int64_t nf = 2;
  while (nf * nf * nf < static_cast<std::int64_t>(M)) ++nf;
  grid.nf = {nf, nf, nf};
  const auto bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(3));

  std::printf("\n--- fast-path ablation: 3D SM spread, rand, M=%zu, tol=%g, fp32 ---\n",
              M, tol);
  if (!spread::sm_fits<float>(dev, grid, bins, w)) {
    std::printf("SM does not fit shared memory at w=%d; skipping.\n", w);
    return;
  }

  auto wl = bench::make_workload<float>(3, M, Dist::Rand, nf);
  vgpu::device_buffer<float> xg(dev, M), yg(dev, M), zg(dev, M);
  dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg[j] = spread::fold_rescale(wl.x[j], grid.nf[0]);
    yg[j] = spread::fold_rescale(wl.y[j], grid.nf[1]);
    zg[j] = spread::fold_rescale(wl.z[j], grid.nf[2]);
  });
  spread::NuPoints<float> pts{xg.data(), yg.data(), zg.data(), M};
  vgpu::device_buffer<std::complex<float>> fw(dev, static_cast<std::size_t>(grid.total()));
  spread::DeviceSort sort;
  spread::bin_sort<float>(dev, grid, bins, xg.data(), yg.data(), zg.data(), M, sort);
  auto subs = spread::build_subproblems(dev, sort, 1024);

  auto run = [&](const spread::KernelParams<float>& kp) {
    return time_best([&] {
      vgpu::fill(dev, fw.span(), std::complex<float>(0, 0));
      spread::spread_sm<float>(dev, grid, bins, kp, pts, wl.c.data(), fw.data(), sort,
                               subs, 1024);
    }, reps);
  };

  auto kp_scalar = spread::KernelParams<float>::from_width(w);
  kp_scalar.fast = false;
  auto kp_fast = spread::KernelParams<float>::from_width(w);
  auto kp_horner = spread::KernelParams<float>::from_width(w);
  spread::HornerTable<float> horner(kp_horner);
  horner.attach(kp_horner);

  struct Cfg {
    const char* name;
    double secs;
  } cfgs[] = {{"scalar", run(kp_scalar)},
              {"fast-direct", run(kp_fast)},
              {"fast-horner", run(kp_horner)}};

  Table t({"path", "spread [s]", "Mpts/s", "speedup vs scalar"});
  for (const auto& cfg : cfgs) {
    t.add_row({cfg.name, Table::fmt(cfg.secs, 3), Table::fmt(M / cfg.secs / 1e6, 2),
               Table::fmt(cfgs[0].secs / cfg.secs, 2) + "x"});
    auto& rec = json.add();
    rec.field("bench", "fastpath3d")
        .field("dist", "rand")
        .field("dim", 3)
        .field("nf", static_cast<std::int64_t>(nf))
        .field("M", M)
        .field("tol", tol)
        .field("method", "SM")
        .field("path", cfg.name)
        .field("spread_s", cfg.secs)
        .field("pts_per_s", double(M) / cfg.secs)
        .field("speedup_vs_scalar", cfgs[0].secs / cfg.secs);
  }
  t.print();
}

/// Tracked execute-ablation problem: 3D rand at density rho ~= 1 — modes N
/// per axis sized so the sigma = 2 fine grid holds ~M points. Shared by the
/// batch / repeated-execute / worker-count / interior ablations so they all
/// bench the same configuration.
struct Tracked3d {
  std::vector<std::int64_t> N;
  std::size_t ntot;
  bench::Workload<float> wl;
};

Tracked3d make_tracked3d(std::size_t M) {
  std::int64_t n = 1;
  while (8 * n * n * n < static_cast<std::int64_t>(M)) ++n;
  Tracked3d t;
  t.N = {n, n, n};
  t.ntot = static_cast<std::size_t>(n * n * n);
  t.wl = bench::make_workload<float>(3, M, Dist::Rand, 2 * n);
  return t;
}

/// Best-of-reps execute timing (one warmup, like time_best) that samples the
/// spread-stage time from the SAME best rep — last_breakdown() after an
/// unrelated rep would pair a best exec_s with a noisy spread_s.
template <typename Body>
std::pair<double, double> time_exec_best(const core::Plan<float>& plan, Body&& body,
                                         int reps) {
  double best = 1e300, spread = 0;
  body();
  for (int r = 0; r < reps; ++r) {
    Timer t;
    body();
    const double e = t.seconds();
    if (e < best) {
      best = e;
      spread = plan.last_breakdown().spread;
    }
  }
  return {best, spread};
}

/// Batch ablation at the tracked configuration: 3D SM type-1 execute, rand,
/// tol = 1e-6, fp32, B = 8. One batched execute (Options::ntransf = 8, the
/// batch-strided pipeline: weights evaluated once per point, one batched FFT
/// launch, one deconvolve launch) against 8 serial B = 1 executes on an
/// identical plan with identical points.
void run_batch(vgpu::Device& dev, const Tracked3d& t3, std::size_t M, int reps,
               bench::JsonReport& json) {
  const double tol = 1e-6;
  const int B = 8;
  const auto& [N, ntot, wl] = t3;

  std::printf("\n--- batch ablation: 3D SM type-1 execute, rand, M=%zu, B=%d, tol=%g, "
              "fp32 ---\n", M, B, tol);

  cf::Rng rng(99);
  std::vector<std::complex<float>> c(B * M);
  for (auto& v : c)
    v = {float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1))};
  std::vector<std::complex<float>> f(B * ntot);

  core::Options sopts;
  sopts.method = core::Method::SM;
  core::Options bopts = sopts;
  bopts.ntransf = B;
  double serial_s, batched_s;
  try {
    core::Plan<float> serial(dev, 1, N, +1, tol, sopts);
    serial.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
    serial_s = time_best([&] {
      for (int b = 0; b < B; ++b)
        serial.execute(c.data() + b * M, f.data() + b * ntot);
    }, reps);

    core::Plan<float> batched(dev, 1, N, +1, tol, bopts);
    batched.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
    batched_s = time_best([&] { batched.execute(c.data(), f.data()); }, reps);
  } catch (const std::invalid_argument& e) {
    std::printf("SM unavailable at this configuration (%s); skipping.\n", e.what());
    return;
  }

  Table t({"path", "exec [s]", "Mpts/s (xB)", "speedup vs serial"});
  struct Cfg {
    const char* name;
    double secs;
  } cfgs[] = {{"serial-8x", serial_s}, {"batched-ntransf8", batched_s}};
  for (const auto& cfg : cfgs) {
    t.add_row({cfg.name, Table::fmt(cfg.secs, 3),
               Table::fmt(double(B) * double(M) / cfg.secs / 1e6, 2),
               Table::fmt(serial_s / cfg.secs, 2) + "x"});
    auto& rec = json.add();
    rec.field("bench", "batch3d")
        .field("dist", "rand")
        .field("dim", 3)
        .field("M", M)
        .field("ntransf", static_cast<std::int64_t>(B))
        .field("tol", tol)
        .field("method", "SM")
        .field("path", cfg.name)
        .field("exec_s", cfg.secs)
        .field("pts_per_s", double(B) * double(M) / cfg.secs)
        .field("speedup_vs_serial", serial_s / cfg.secs);
  }
  t.print();
}

/// Repeated-execute ablation at the tracked configuration (3D SM type-1,
/// rand, M = mfast, tol = 1e-6, fp32): one set_points, many executes, with
/// the plan-resident PointCache (tap table built once in set_points) against
/// the per-execute-rebuild baseline (Options::point_cache = 0 — the pre-cache
/// pipeline's cost model). Reports both whole-execute and spread-stage time.
void run_repeat(vgpu::Device& dev, const Tracked3d& t3, std::size_t M, int reps,
                bench::JsonReport& json) {
  const double tol = 1e-6;
  const auto& [N, ntot, wl] = t3;

  std::printf("\n--- repeated-execute ablation: 3D SM type-1, rand, M=%zu, tol=%g, fp32, "
              "plan-resident tap cache vs per-execute rebuild ---\n", M, tol);

  auto c = wl.c;  // execute takes a mutable strengths pointer
  std::vector<std::complex<float>> f(ntot);

  core::Options copts;
  copts.method = core::Method::SM;
  core::Options ropts = copts;
  ropts.point_cache = 0;

  struct Cfg {
    const char* name;
    double exec_s, spread_s;
  } cfgs[2];
  try {
    core::Plan<float> cached(dev, 1, N, +1, tol, copts);
    cached.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
    cfgs[1] = {"cached", 0, 0};
    std::tie(cfgs[1].exec_s, cfgs[1].spread_s) =
        time_exec_best(cached, [&] { cached.execute(c.data(), f.data()); }, reps);

    core::Plan<float> rebuild(dev, 1, N, +1, tol, ropts);
    rebuild.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
    cfgs[0] = {"rebuild", 0, 0};
    std::tie(cfgs[0].exec_s, cfgs[0].spread_s) =
        time_exec_best(rebuild, [&] { rebuild.execute(c.data(), f.data()); }, reps);
  } catch (const std::invalid_argument& e) {
    std::printf("SM unavailable at this configuration (%s); skipping.\n", e.what());
    return;
  }

  Table t({"path", "exec [s]", "spread [s]", "exec spdup", "spread spdup"});
  for (const auto& cfg : cfgs) {
    t.add_row({cfg.name, Table::fmt(cfg.exec_s, 3), Table::fmt(cfg.spread_s, 3),
               Table::fmt(cfgs[0].exec_s / cfg.exec_s, 2) + "x",
               Table::fmt(cfgs[0].spread_s / cfg.spread_s, 2) + "x"});
    auto& rec = json.add();
    rec.field("bench", "repeat3d")
        .field("dist", "rand")
        .field("dim", 3)
        .field("M", M)
        .field("tol", tol)
        .field("method", "SM")
        .field("path", cfg.name)
        .field("exec_s", cfg.exec_s)
        .field("spread_s", cfg.spread_s)
        .field("pts_per_s", double(M) / cfg.exec_s)
        .field("speedup_vs_rebuild", cfgs[0].exec_s / cfg.exec_s)
        .field("spread_speedup_vs_rebuild", cfgs[0].spread_s / cfg.spread_s);
  }
  t.print();
}

/// Worker-count ablation (ROADMAP PR-2 follow-up): the tracked 3D SM type-1
/// execute at workers in {1, 2, hw}. Each worker count gets its own Device
/// (its own pool), same points and strengths.
void run_workers(const Tracked3d& t3, std::size_t M, int reps,
                 bench::JsonReport& json) {
  const double tol = 1e-6;
  const auto& [N, ntot, wl] = t3;
  auto c = wl.c;  // execute takes a mutable strengths pointer
  std::vector<std::complex<float>> f(ntot);

  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<std::size_t> counts{1, 2, hw};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  counts.erase(std::remove_if(counts.begin(), counts.end(),
                              [&](std::size_t c) { return c > hw; }),
               counts.end());

  std::printf("\n--- worker-count ablation: 3D SM type-1 execute, rand, M=%zu, tol=%g, "
              "fp32 ---\n", M, tol);
  Table t({"workers", "exec [s]", "spread [s]", "Mpts/s", "scaling vs 1"});
  double base = 0;
  for (std::size_t wks : counts) {
    vgpu::Device dev(wks);
    core::Options opts;
    opts.method = core::Method::SM;
    double exec_s, spread_s;
    try {
      core::Plan<float> plan(dev, 1, N, +1, tol, opts);
      plan.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
      std::tie(exec_s, spread_s) =
          time_exec_best(plan, [&] { plan.execute(c.data(), f.data()); }, reps);
    } catch (const std::invalid_argument& e) {
      std::printf("SM unavailable (%s); skipping.\n", e.what());
      return;
    }
    if (wks == 1) base = exec_s;
    t.add_row({std::to_string(wks), Table::fmt(exec_s, 3), Table::fmt(spread_s, 3),
               Table::fmt(M / exec_s / 1e6, 2),
               Table::fmt(base / exec_s, 2) + "x"});
    auto& rec = json.add();
    rec.field("bench", "workers3d")
        .field("dist", "rand")
        .field("dim", 3)
        .field("M", M)
        .field("tol", tol)
        .field("method", "SM")
        .field("workers", wks)
        .field("exec_s", exec_s)
        .field("spread_s", spread_s)
        .field("pts_per_s", double(M) / exec_s)
        .field("scaling_vs_1", base / exec_s);
  }
  t.print();
}

/// Tiled-writeback ablation at the tracked configuration: 3D type-1 execute,
/// rand, tol = 1e-6, fp32, SM and GM-sort, tile-owned atomic-free writeback
/// (Options::tiled_spread, the default) against the atomic writeback
/// baseline. Records per-execute global atomics (zero on the tiled path; the
/// halo-merge counter shows the plain adds that replaced them), the
/// set_points/cache-build cost the tile ownership adds, and whether the tiled
/// output is bitwise-identical across worker counts {1, 2}.
void run_tiled(const Tracked3d& t3, std::size_t M, int reps, bench::JsonReport& json) {
  const double tol = 1e-6;
  const auto& [N, ntot, wl] = t3;
  auto c = wl.c;  // execute takes a mutable strengths pointer
  std::vector<std::complex<float>> f(ntot);

  std::printf("\n--- tiled-writeback ablation: 3D type-1 execute, rand, M=%zu, tol=%g, "
              "fp32, tile-owned vs atomic writeback ---\n", M, tol);
  Table t({"method", "writeback", "exec [s]", "spread [s]", "atomics/pt", "merge/pt",
           "setpts [s]", "cache [s]", "spread spdup"});
  for (core::Method method : {core::Method::SM, core::Method::GMSort}) {
    double base_exec = 0, base_spread = 0;
    for (int tiled : {0, 1}) {
      vgpu::Device dev;
      core::Options opts;
      opts.method = method;
      opts.tiled_spread = tiled;
      double setpts_s, exec_s, spread_s;
      int tiled_ran = 0;
      std::uint64_t atomics = 0, merges = 0;
      std::size_t tiles_active = 0;
      try {
        core::Plan<float> plan(dev, 1, N, +1, tol, opts);
        Timer ts;
        plan.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
        setpts_s = ts.seconds();
        std::tie(exec_s, spread_s) =
            time_exec_best(plan, [&] { plan.execute(c.data(), f.data()); }, reps);
        dev.counters.reset();
        plan.execute(c.data(), f.data());
        atomics = dev.counters.global_atomics.load();
        merges = dev.counters.tile_merge_ops.load();
        tiled_ran = plan.last_breakdown().tiled;
        tiles_active = plan.last_breakdown().tiles_active;
        if (!tiled) {
          base_exec = exec_s;
          base_spread = spread_s;
        }
        const auto& bd = plan.last_breakdown();
        t.add_row({core::method_name(method), tiled ? "tiled" : "atomic",
                   Table::fmt(exec_s, 3), Table::fmt(spread_s, 3),
                   Table::fmt(double(atomics) / double(M), 1),
                   Table::fmt(double(merges) / double(M), 1),
                   Table::fmt(setpts_s, 3), Table::fmt(bd.cache_build, 3),
                   Table::fmt(base_spread / spread_s, 2) + "x"});
        // Determinism: the tiled pipeline must be bitwise-identical across
        // worker counts (the atomic baseline is not — float atomics
        // reassociate with scheduling). Compared at explicit worker counts
        // 1 vs 2 so the check is meaningful regardless of the host's core
        // count (the timing device above uses all cores).
        bool bitwise = true;
        if (tiled) {
          std::vector<std::complex<float>> f1(ntot), f2(ntot);
          for (auto [wks, fp] : {std::pair<std::size_t, std::complex<float>*>{1, f1.data()},
                                 {2, f2.data()}}) {
            vgpu::Device devw(wks);
            core::Plan<float> planw(devw, 1, N, +1, tol, opts);
            planw.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
            planw.execute(c.data(), fp);
            // The claim is about the tile engine; a silent atomic fallback
            // must not be recorded as a tiled-determinism result.
            bitwise = bitwise && planw.last_breakdown().tiled == 1;
          }
          for (std::size_t i = 0; i < ntot && bitwise; ++i)
            bitwise = f1[i] == f2[i];
        }
        auto& rec = json.add();
        rec.field("bench", "tiled3d")
            .field("dist", "rand")
            .field("dim", 3)
            .field("M", M)
            .field("tol", tol)
            .field("method", core::method_name(method))
            .field("path", tiled ? "tiled" : "atomic")
            .field("tiled_active", static_cast<std::int64_t>(tiled_ran))
            .field("tiles", tiles_active)
            .field("exec_s", exec_s)
            .field("spread_s", spread_s)
            .field("setpts_s", setpts_s)
            .field("cache_build_s", bd.cache_build)
            .field("sort_s", bd.sort)
            .field("pts_per_s", double(M) / exec_s)
            .field("global_atomics", atomics)
            .field("atomics_per_pt", double(atomics) / double(M))
            .field("tile_merge_ops", merges)
            .field("spread_speedup_vs_atomic", base_spread / spread_s)
            .field("exec_speedup_vs_atomic", base_exec / exec_s);
        if (tiled)
          rec.field("tile_chunks", bd.tile_chunks)
              .field("max_tile_points", bd.max_tile_points)
              .field("chunk_steals", bd.chunk_steals)
              .field("bitwise_across_workers", static_cast<std::int64_t>(bitwise));
      } catch (const std::invalid_argument& e) {
        std::printf("%s unavailable (%s); skipping.\n", core::method_name(method),
                    e.what());
        break;
      }
    }
  }
  t.print();
}

/// Chunked-scheduler ablation on a clustered distribution: the tracked 3D
/// configuration with every point in a handful of Gaussian clumps, so a few
/// tiles own nearly all points and an unsplit per-tile schedule serializes
/// behind them. Tiled SM and GM-sort run with the chunk split disabled
/// (tile_chunk_cap = -1, the one-item-per-tile schedule), the auto cap, and
/// an explicit small cap; rows record the (tile, chunk) work-item count, the
/// heaviest tile, the items stolen at 2 workers, and the spread speedup over
/// the unsplit schedule. The determinism contract is re-checked per cap: at
/// a fixed cap the output must stay bitwise-identical across worker counts.
void run_tiled_cluster(const Tracked3d& t3, std::size_t M, int reps,
                       bench::JsonReport& json) {
  const double tol = 1e-6;
  const auto& N = t3.N;
  const std::size_t ntot = t3.ntot;
  // Fine grid carries ~2x upsampling; a sigma of 1 fine cell keeps each
  // clump inside a few bins — the adversarial all-in-few-bins case.
  auto wl = bench::make_clumped_workload<float>(3, M, /*clumps=*/4, 2 * N[0],
                                                /*sigma_cells=*/1.0);
  auto c = wl.c;  // execute takes a mutable strengths pointer
  std::vector<std::complex<float>> f(ntot);

  std::printf("\n--- chunked-scheduler ablation: 3D type-1 execute, cluster (4 gaussian "
              "clumps), M=%zu, tol=%g, fp32, tiled writeback ---\n", M, tol);
  Table t({"method", "chunk cap", "exec [s]", "spread [s]", "chunks", "tiles",
           "max tile pts", "steals@2w", "spread spdup"});
  struct CapCfg {
    const char* name;
    int cap;
  };
  for (core::Method method : {core::Method::SM, core::Method::GMSort}) {
    double base_exec = 0, base_spread = 0;
    for (const CapCfg& cc :
         {CapCfg{"nochunk", -1}, CapCfg{"auto", 0}, CapCfg{"cap2048", 2048}}) {
      vgpu::Device dev;
      core::Options opts;
      opts.method = method;
      opts.tile_chunk_cap = cc.cap;
      try {
        core::Plan<float> plan(dev, 1, N, +1, tol, opts);
        plan.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
        const auto [exec_s, spread_s] =
            time_exec_best(plan, [&] { plan.execute(c.data(), f.data()); }, reps);
        const auto bd = plan.last_breakdown();
        if (cc.cap < 0) {
          base_exec = exec_s;
          base_spread = spread_s;
        }
        // Re-run at explicit worker counts 1 and 2: the 2-worker run is where
        // stealing can actually happen (the timing device above uses every
        // host core, which may be one), and the pair doubles as the per-cap
        // bitwise determinism check.
        bool bitwise = true;
        std::uint64_t steals2 = 0;
        std::vector<std::complex<float>> f1(ntot), f2(ntot);
        for (auto [wks, fp] : {std::pair<std::size_t, std::complex<float>*>{1, f1.data()},
                               {2, f2.data()}}) {
          vgpu::Device devw(wks);
          core::Plan<float> planw(devw, 1, N, +1, tol, opts);
          planw.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
          planw.execute(c.data(), fp);
          // A silent atomic fallback must not be recorded as a tiled result.
          bitwise = bitwise && planw.last_breakdown().tiled == 1;
          if (wks == 2) steals2 = planw.last_breakdown().chunk_steals;
        }
        for (std::size_t i = 0; i < ntot && bitwise; ++i) bitwise = f1[i] == f2[i];
        t.add_row({core::method_name(method), cc.name, Table::fmt(exec_s, 3),
                   Table::fmt(spread_s, 3), std::to_string(bd.tile_chunks),
                   std::to_string(bd.tiles_active), std::to_string(bd.max_tile_points),
                   std::to_string(steals2), Table::fmt(base_spread / spread_s, 2) + "x"});
        json.add()
            .field("bench", "tiled3d")
            .field("dist", "cluster")
            .field("dim", 3)
            .field("M", M)
            .field("tol", tol)
            .field("method", core::method_name(method))
            .field("path", std::string("tiled-") + cc.name)
            .field("chunk_cap", cc.cap)
            .field("tiled_active", static_cast<std::int64_t>(bd.tiled))
            .field("tiles", bd.tiles_active)
            .field("tile_chunks", bd.tile_chunks)
            .field("max_tile_points", bd.max_tile_points)
            .field("chunk_steals_2w", steals2)
            .field("exec_s", exec_s)
            .field("spread_s", spread_s)
            .field("pts_per_s", double(M) / exec_s)
            .field("spread_speedup_vs_nochunk", base_spread / spread_s)
            .field("exec_speedup_vs_nochunk", base_exec / exec_s)
            .field("bitwise_across_workers", static_cast<std::int64_t>(bitwise));
      } catch (const std::invalid_argument& e) {
        std::printf("%s unavailable (%s); skipping.\n", core::method_name(method),
                    e.what());
        break;
      }
    }
  }
  t.print();
}

/// Low-upsampling ablation: the tracked 3D type-1 problem at sigma = 2 vs
/// sigma = 1.25 (GM-sort). Reports the fine-grid footprint (fw bytes — the
/// (2/1.25)^3 ~ 4.1x shrink this mode exists for), the set_points / spread /
/// FFT / deconvolve split, and whole-execute time. The smaller grid buys a
/// cheaper FFT and less fw traffic at the cost of a wider kernel (w 7 -> 10
/// at tol 1e-6).
void run_sigma(vgpu::Device& dev, const Tracked3d& t3, std::size_t M, int reps,
               bench::JsonReport& json) {
  const double tol = 1e-6;
  const auto& [N, ntot, wl] = t3;
  auto c = wl.c;  // execute takes a mutable strengths pointer
  std::vector<std::complex<float>> f(ntot);

  std::printf("\n--- upsampling-factor ablation: 3D GM-sort type-1, rand, M=%zu, "
              "tol=%g, fp32, sigma in {2, 1.25} ---\n", M, tol);
  Table t({"sigma", "w", "fw MB", "setpts [s]", "exec [s]", "spread [s]",
           "fft [s]", "deconv [s]"});
  std::size_t fw2 = 0;
  for (double sigma : {2.0, 1.25}) {
    core::Options opts;
    opts.method = core::Method::GMSort;
    opts.upsampfac = sigma;
    core::Plan<float> plan(dev, 1, N, +1, tol, opts);
    const std::size_t fw_bytes = static_cast<std::size_t>(plan.fine_grid().total()) *
                                 sizeof(std::complex<float>);
    if (sigma == 2.0) fw2 = fw_bytes;
    Timer ts;
    plan.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
    const double setpts_s = ts.seconds();
    const auto [exec_s, spread_s] =
        time_exec_best(plan, [&] { plan.execute(c.data(), f.data()); }, reps);
    const auto bd = plan.last_breakdown();
    t.add_row({Table::fmt(sigma, 2), std::to_string(plan.kernel_width()),
               Table::fmt(double(fw_bytes) / 1048576.0, 2), Table::fmt(setpts_s, 3),
               Table::fmt(exec_s, 3), Table::fmt(spread_s, 3), Table::fmt(bd.fft, 3),
               Table::fmt(bd.deconvolve, 3)});
    auto& rec = json.add();
    rec.field("bench", "sigma3d")
        .field("dist", "rand")
        .field("dim", 3)
        .field("M", M)
        .field("tol", tol)
        .field("method", "GM-sort")
        .field("sigma", sigma)
        .field("width", plan.kernel_width())
        .field("fw_bytes", fw_bytes)
        .field("fw_bytes_vs_sigma2", fw2 ? double(fw_bytes) / double(fw2) : 1.0)
        .field("setpts_s", setpts_s)
        .field("exec_s", exec_s)
        .field("spread_s", spread_s)
        .field("fft_s", bd.fft)
        .field("deconvolve_s", bd.deconvolve)
        .field("pts_per_s", double(M) / exec_s);
  }
  t.print();
}

/// Interior-fastpath ablation: 3D GM-sort type-1 execute (the method whose
/// spread takes the wrap-around index path per tap) with the plan's
/// interior/boundary classification on vs off. At rho ~= 1 nearly all points
/// are interior, so this isolates the no-wrap indexing win.
void run_interior(vgpu::Device& dev, const Tracked3d& t3, std::size_t M, int reps,
                  bench::JsonReport& json) {
  const double tol = 1e-6;
  const auto& [N, ntot, wl] = t3;
  auto c = wl.c;  // execute takes a mutable strengths pointer
  std::vector<std::complex<float>> f(ntot);

  std::printf("\n--- interior-fastpath ablation: 3D GM-sort type-1 execute, rand, "
              "M=%zu, tol=%g, fp32 ---\n", M, tol);
  Table t({"interior fastpath", "exec [s]", "spread [s]", "interior pts", "spdup"});
  double base_exec = 0, base_spread = 0;
  for (int on : {0, 1}) {
    core::Options opts;
    opts.method = core::Method::GMSort;
    opts.interior_fastpath = on;
    // Pin the atomic writeback: the tiled engine never wraps, so the
    // interior partition only matters on the atomic path this isolates.
    opts.tiled_spread = 0;
    core::Plan<float> plan(dev, 1, N, +1, tol, opts);
    plan.set_points(M, wl.x.data(), wl.y.data(), wl.z.data());
    const auto [exec_s, spread_s] =
        time_exec_best(plan, [&] { plan.execute(c.data(), f.data()); }, reps);
    if (!on) {
      base_exec = exec_s;
      base_spread = spread_s;
    }
    t.add_row({on ? "on" : "off", Table::fmt(exec_s, 3), Table::fmt(spread_s, 3),
               std::to_string(plan.last_breakdown().interior_points),
               Table::fmt(base_spread / spread_s, 2) + "x"});
    auto& rec = json.add();
    rec.field("bench", "interior3d")
        .field("dist", "rand")
        .field("dim", 3)
        .field("M", M)
        .field("tol", tol)
        .field("method", "GM-sort")
        .field("path", on ? "interior-on" : "interior-off")
        .field("exec_s", exec_s)
        .field("spread_s", spread_s)
        .field("pts_per_s", double(M) / exec_s)
        .field("spread_speedup_vs_wrap", base_spread / spread_s)
        .field("exec_speedup_vs_wrap", base_exec / exec_s);
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const bool full = cli.has("full");
  const std::size_t mfast = static_cast<std::size_t>(cli.get_int("mfast", 1000000));
  const std::string json_path = cli.get("json", "BENCH_spread.json");

  bench::banner("Fig. 2 — spreading methods GM / GM-sort / SM",
                "GM-sort up to 3.9x (2D) / 7.6x (3D) over GM on rand at large grids; "
                "SM up to 12.8x (2D) / 3.2x (3D) on cluster; SM distribution-robust");

  vgpu::Device dev;
  bench::JsonReport json;
  std::vector<std::int64_t> sizes2d = full
      ? std::vector<std::int64_t>{128, 256, 512, 1024, 2048, 4096}
      : std::vector<std::int64_t>{128, 256, 512, 1024};
  std::vector<std::int64_t> sizes3d = full ? std::vector<std::int64_t>{32, 64, 128, 256}
                                           : std::vector<std::int64_t>{32, 64, 128};

  for (Dist dist : {Dist::Rand, Dist::Cluster}) run_sweep(dev, 2, sizes2d, dist, reps, json);
  for (Dist dist : {Dist::Rand, Dist::Cluster}) run_sweep(dev, 3, sizes3d, dist, reps, json);

  run_fastpath(dev, mfast, reps, json);
  // One tracked 3D problem shared by the execute ablations, so they all
  // bench the same points.
  const Tracked3d tracked = make_tracked3d(mfast);
  run_batch(dev, tracked, mfast, reps, json);
  run_repeat(dev, tracked, mfast, reps, json);
  run_sigma(dev, tracked, mfast, reps, json);
  run_tiled(tracked, mfast, reps, json);
  run_tiled_cluster(tracked, mfast, reps, json);
  run_interior(dev, tracked, mfast, reps, json);
  run_workers(tracked, mfast, reps, json);

  if (json.write(json_path))
    std::printf("\nWrote machine-readable results to %s\n", json_path.c_str());

  std::printf("\nCounters note: rerun with a profiler or see bench_ablation_binsize for\n"
              "global-atomic counts; SM's reduction in global atomics is tested in\n"
              "tests/test_spread.cpp (CountersShowSmUsesFewerGlobalAtomics).\n");
  return 0;
}
