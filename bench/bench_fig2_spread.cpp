// Fig. 2 reproduction: spreading method comparison (GM vs GM-sort vs SM).
//
// Execution time per nonuniform point vs fine-grid size, for "rand" and
// "cluster" distributions, 2D and 3D, density rho = 1, eps = 1e-5 (w = 6),
// single precision. "total" includes the bin-sort/subproblem precomputation;
// "spread" excludes it. Annotations report speedup over the GM baseline.
//
// Paper shape to reproduce:
//   - rand, large grids: GM-sort beats GM (3.9x in 2D, 7.6x in 3D at the top)
//   - rand, small grids: sorting brings no benefit
//   - cluster: sorting alone does not help; SM wins big (up to 12.8x in 2D)
//   - SM's throughput is distribution-robust (rand ~ cluster)
//
// Flags: --m2d <pts> --m3d <pts> (override rho=1), --reps N, --full (paper
// grid range).
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/primitives.hpp"
#include "vgpu/device.hpp"

using namespace cf;
using bench::Dist;

namespace {

struct Row {
  double spread_gm, total_sort, spread_sort, total_sm, spread_sm;
};

Row run_case(vgpu::Device& dev, int dim, std::int64_t nf, Dist dist, int reps) {
  const auto kp = spread::KernelParams<float>::from_width(6);  // eps = 1e-5
  spread::GridSpec grid;
  grid.dim = dim;
  for (int d = 0; d < dim; ++d) grid.nf[d] = nf;
  const auto bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(dim));
  const std::size_t M = static_cast<std::size_t>(grid.total());  // rho = 1

  auto wl = bench::make_workload<float>(dim, M, dist, nf);
  // Fold-rescale once (plan-stage work in the library).
  vgpu::device_buffer<float> xg(dev, M), yg(dev, dim >= 2 ? M : 0),
      zg(dev, dim >= 3 ? M : 0);
  dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg[j] = spread::fold_rescale(wl.x[j], grid.nf[0]);
    if (dim >= 2) yg[j] = spread::fold_rescale(wl.y[j], grid.nf[1]);
    if (dim >= 3) zg[j] = spread::fold_rescale(wl.z[j], grid.nf[2]);
  });
  spread::NuPoints<float> pts{xg.data(), dim >= 2 ? yg.data() : nullptr,
                              dim >= 3 ? zg.data() : nullptr, M};
  vgpu::device_buffer<std::complex<float>> fw(dev, static_cast<std::size_t>(grid.total()));

  auto zero = [&] { vgpu::fill(dev, fw.span(), std::complex<float>(0, 0)); };

  Row r{};
  // GM: no precomputation; spread == total.
  r.spread_gm = time_best([&] {
    zero();
    spread::spread_gm<float>(dev, grid, kp, pts, wl.c.data(), fw.data(), nullptr);
  }, reps);

  // GM-sort: sort precomputation + sorted spread.
  spread::DeviceSort sort;
  const double sort_time = time_best([&] {
    spread::bin_sort<float>(dev, grid, bins, xg.data(), pts.yg, pts.zg, M, sort);
  }, reps);
  r.spread_sort = time_best([&] {
    zero();
    spread::spread_gm<float>(dev, grid, kp, pts, wl.c.data(), fw.data(),
                             sort.order.data());
  }, reps);
  r.total_sort = sort_time + r.spread_sort;

  // SM: sort + subproblem setup precomputation + shared-memory spread.
  if (spread::sm_fits<float>(dev, grid, bins, kp.w)) {
    spread::SubprobSetup subs;
    const double setup_time = time_best([&] {
      subs = spread::build_subproblems(dev, sort, 1024);
    }, reps);
    r.spread_sm = time_best([&] {
      zero();
      spread::spread_sm<float>(dev, grid, bins, kp, pts, wl.c.data(), fw.data(), sort,
                               subs, 1024);
    }, reps);
    r.total_sm = sort_time + setup_time + r.spread_sm;
  } else {
    r.spread_sm = r.total_sm = -1;
  }
  return r;
}

void run_sweep(vgpu::Device& dev, int dim, const std::vector<std::int64_t>& sizes,
               Dist dist, int reps) {
  std::printf("\n--- %dD %s, rho=1, eps=1e-5 (fp32) --- [ns per nonuniform point]\n", dim,
              bench::dist_name(dist));
  Table t({"nf/axis", "M", "spread GM", "spread GM-sort", "total GM-sort", "spread SM",
           "total SM", "GM-sort spdup", "SM spdup"});
  for (auto nf : sizes) {
    const Row r = run_case(dev, dim, nf, dist, reps);
    std::size_t M = 1;
    for (int d = 0; d < dim; ++d) M *= static_cast<std::size_t>(nf);
    t.add_row({std::to_string(nf), Table::fmt_sci(double(M), 1),
               bench::fmt_ns(r.spread_gm, M), bench::fmt_ns(r.spread_sort, M),
               bench::fmt_ns(r.total_sort, M),
               r.spread_sm < 0 ? "n/a" : bench::fmt_ns(r.spread_sm, M),
               r.total_sm < 0 ? "n/a" : bench::fmt_ns(r.total_sm, M),
               Table::fmt(r.spread_gm / r.spread_sort, 1) + "x",
               r.spread_sm < 0 ? "n/a" : Table::fmt(r.spread_gm / r.spread_sm, 1) + "x"});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const bool full = cli.has("full");

  bench::banner("Fig. 2 — spreading methods GM / GM-sort / SM",
                "GM-sort up to 3.9x (2D) / 7.6x (3D) over GM on rand at large grids; "
                "SM up to 12.8x (2D) / 3.2x (3D) on cluster; SM distribution-robust");

  vgpu::Device dev;
  std::vector<std::int64_t> sizes2d = full
      ? std::vector<std::int64_t>{128, 256, 512, 1024, 2048, 4096}
      : std::vector<std::int64_t>{128, 256, 512, 1024};
  std::vector<std::int64_t> sizes3d = full ? std::vector<std::int64_t>{32, 64, 128, 256}
                                           : std::vector<std::int64_t>{32, 64, 128};

  for (Dist dist : {Dist::Rand, Dist::Cluster}) run_sweep(dev, 2, sizes2d, dist, reps);
  for (Dist dist : {Dist::Rand, Dist::Cluster}) run_sweep(dev, 3, sizes3d, dist, reps);

  std::printf("\nCounters note: rerun with a profiler or see bench_ablation_binsize for\n"
              "global-atomic counts; SM's reduction in global atomics is tested in\n"
              "tests/test_spread.cpp (CountersShowSmUsesFewerGlobalAtomics).\n");
  return 0;
}
