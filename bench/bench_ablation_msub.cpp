// Ablation (paper Rmk. 1): the SM subproblem cap Msub. The paper fixes
// Msub = 1024 while noting the optimum is problem-dependent; this sweep
// shows the load-balance / overhead trade-off on both distributions.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/primitives.hpp"
#include "vgpu/device.hpp"

using namespace cf;
using bench::Dist;

namespace {

void msub_sweep(benchmark::State& state) {
  const std::uint32_t msub = static_cast<std::uint32_t>(state.range(0));
  const Dist dist = state.range(1) ? Dist::Cluster : Dist::Rand;
  const std::int64_t nf = 512;

  static vgpu::Device dev;
  spread::GridSpec grid;
  grid.dim = 2;
  grid.nf = {nf, nf, 1};
  const auto bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(2));
  const auto kp = spread::KernelParams<float>::from_width(6);
  const std::size_t M = static_cast<std::size_t>(grid.total());
  auto wl = bench::make_workload<float>(2, M, dist, nf);
  vgpu::device_buffer<float> xg(dev, M), yg(dev, M);
  dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
    xg[j] = spread::fold_rescale(wl.x[j], grid.nf[0]);
    yg[j] = spread::fold_rescale(wl.y[j], grid.nf[1]);
  });
  spread::NuPoints<float> pts{xg.data(), yg.data(), nullptr, M};
  spread::DeviceSort sort;
  spread::bin_sort<float>(dev, grid, bins, xg.data(), yg.data(), nullptr, M, sort);
  auto subs = spread::build_subproblems(dev, sort, msub);
  vgpu::device_buffer<std::complex<float>> fw(dev, static_cast<std::size_t>(grid.total()));

  for (auto _ : state) {
    vgpu::fill(dev, fw.span(), std::complex<float>(0, 0));
    spread::spread_sm<float>(dev, grid, bins, kp, pts, wl.c.data(), fw.data(), sort, subs,
                             msub);
  }
  state.SetLabel(dist == Dist::Rand ? "rand" : "cluster");
  state.counters["nsubprob"] = double(subs.nsubprob);
  state.counters["pts_per_s"] = benchmark::Counter(
      double(M) * double(state.iterations()), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(msub_sweep)
    ->ArgsProduct({{64, 256, 1024, 4096, 16384}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
