// Ablation (paper Sec. IV "Tasks"): effect of the problem density
// rho = M / prod(n_i) on method ranking. The paper reports testing rho = 0.1
// and 10 in addition to 1, finding "rather similar" conclusions, and notes
// that for rho << 1 one essentially compares plain FFT speeds.
//
// Flags: --n (default 512), --reps.
#include <cstdio>

#include "libs.hpp"

using namespace cf;
using namespace cf::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::int64_t Naxis = cli.get_int("n", 512);
  const int reps = static_cast<int>(cli.get_int("reps", 2));

  banner("Ablation — problem density rho in {0.1, 1, 10} (2D type 1, eps=1e-5, fp32)",
         "method ranking is density-insensitive; at rho<<1 the FFT dominates");

  vgpu::Device dev;
  ThreadPool pool;
  const std::vector<std::int64_t> N(2, Naxis);
  const std::size_t grid_total = static_cast<std::size_t>(4 * Naxis * Naxis);

  Table t({"rho", "M", "lib", "exec ns/pt", "exec total (ms)", "rel l2 err"});
  for (double rho : {0.1, 1.0, 10.0}) {
    const std::size_t M = static_cast<std::size_t>(rho * double(grid_total));
    auto wl = make_workload<double>(2, M, Dist::Rand, 2 * Naxis);
    auto gt = make_ground_truth(pool, wl, N);
    for (Lib lib : {Lib::Finufft, Lib::CufinufftSM, Lib::CufinufftGMSort}) {
      const auto r = run_lib<float>(lib, dev, pool, 1, N, 1e-5, wl, gt, reps);
      if (!r.ok) continue;
      t.add_row({Table::fmt(rho, 1), Table::fmt_sci(double(M), 1), lib_name(lib),
                 fmt_ns(r.exec, M), Table::fmt(r.exec * 1e3, 2),
                 Table::fmt_sci(r.err, 1)});
    }
  }
  t.print();
  return 0;
}
