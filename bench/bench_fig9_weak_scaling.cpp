// Fig. 9 reproduction: single-node multi-GPU weak scaling of the M-TIP NUFFT
// steps. Each rank gets a fixed problem size; ranks are assigned to devices
// round-robin. The node model has a fixed number of devices ("GPUs") whose
// worker pools partition the host cores — so scaling is flat up to one rank
// per device and collapses when devices are oversubscribed, exactly the
// paper's observation.
//
// Paper shape to reproduce:
//   - near-ideal (flat) weak scaling up to nranks == ngpus
//   - rapid deterioration beyond one rank per GPU
//
// Flags: --ngpus (default 4), --images (default 24), --maxranks.
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "mtip/mtip.hpp"

using namespace cf;
using namespace cf::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int ngpus = static_cast<int>(cli.get_int("ngpus", 4));
  const int images = static_cast<int>(cli.get_int("images", 24));
  const int maxranks = static_cast<int>(cli.get_int("maxranks", 2 * ngpus));

  banner("Fig. 9 — single-node multi-GPU weak scaling (M-TIP per-rank sizes)",
         "flat lines up to one rank per GPU, deterioration beyond");

  mtip::MtipConfig cfg;
  cfg.N_slice = 41;
  cfg.N_merge = 81;
  cfg.nimages = images;
  cfg.det.ndet = 32;
  cfg.tol = 1e-12;
  mtip::BlobDensity rho(6, 2.0, 999);

  mtip::NodeSpec node;
  node.ngpus = ngpus;
  node.cores = std::max(1u, std::thread::hardware_concurrency());
  std::printf("\nNode model: %d devices, %zu host cores (%zu workers each)\n", ngpus,
              node.cores, std::max<std::size_t>(1, node.cores / ngpus));

  Table t({"ranks", "setup (s)", "slice exec (s)", "merge exec (s)", "note"});
  for (int r = 1; r <= maxranks; r *= 2) {
    const auto p = mtip::run_weak_scaling(r, cfg, node, rho);
    t.add_row({std::to_string(r), Table::fmt(p.setup_s, 3), Table::fmt(p.slice_s, 3),
               Table::fmt(p.merge_s, 3),
               r <= ngpus ? "<= 1 rank/GPU (expect flat)" : "oversubscribed"});
  }
  t.print();
  std::printf("\nIdeal weak scaling = constant times while ranks <= %d.\n", ngpus);
  return 0;
}
