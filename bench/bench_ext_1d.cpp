// Extension bench: 1D transforms (paper Sec. VI future work, implemented
// here). Verifies that the Fig. 2 method relationships carry over to 1D —
// GM-sort helps on large grids for "rand", SM wins on "cluster", SM is
// distribution-robust — and reports full type-1/type-2 pipeline times.
//
// Flags: --reps N, --full.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "cpu/cpu_plan.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

using namespace cf;
using bench::Dist;

namespace {

void run_methods(vgpu::Device& dev, std::int64_t Naxis, Dist dist, int reps) {
  const std::size_t M = static_cast<std::size_t>(2 * Naxis);  // rho = 1
  auto wl = bench::make_workload<float>(1, M, dist, 2 * Naxis);
  const std::int64_t N[1] = {Naxis};

  Table t({"method", "type", "exec ns/pt"});
  for (auto method : {core::Method::GM, core::Method::GMSort, core::Method::SM}) {
    for (int type : {1, 2}) {
      if (type == 2 && method == core::Method::SM) continue;
      core::Options opts;
      opts.method = method;
      try {
        core::Plan<float> plan(dev, type, std::span(N, 1), +1, 1e-5, opts);
        vgpu::device_buffer<float> dx(dev, std::span<const float>(wl.x));
        vgpu::device_buffer<std::complex<float>> dc(
            dev, std::span<const std::complex<float>>(wl.c));
        vgpu::device_buffer<std::complex<float>> df(dev, static_cast<std::size_t>(Naxis));
        plan.set_points(M, dx.data(), nullptr, nullptr);
        const double sec = time_best(
            [&] { plan.execute(dc.data(), df.data()); }, reps);
        t.add_row({core::method_name(method), std::to_string(type),
                   bench::fmt_ns(sec, M)});
      } catch (const std::exception&) {
        t.add_row({core::method_name(method), std::to_string(type), "unsupported"});
      }
    }
  }
  std::printf("\n--- 1D %s, N=%lld, M=%.1e, eps=1e-5 (fp32) ---\n",
              bench::dist_name(dist), (long long)Naxis, double(M));
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const bool full = cli.has("full");

  bench::banner("Extension — 1D transforms (paper Sec. VI future work)",
                "Fig. 2's method relationships should carry over to 1D");

  vgpu::Device dev;
  for (auto Naxis : full ? std::vector<std::int64_t>{1 << 16, 1 << 20, 1 << 23}
                         : std::vector<std::int64_t>{1 << 16, 1 << 19}) {
    for (Dist dist : {Dist::Rand, Dist::Cluster}) run_methods(dev, Naxis, dist, reps);
  }
  return 0;
}
