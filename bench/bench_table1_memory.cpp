// Table I reproduction: 3D type-1 exec time, device RAM, speedup vs FINUFFT,
// and spread fraction, for GM-sort and SM at eps = 1e-2 and 1e-5 (fp32,
// "rand", the paper's densities: M = 2.62e5 at N=32 — rho=1 — and the large
// case scaled from the paper's N=256/M=1.34e8).
//
// Paper shape to reproduce:
//   - SM faster than GM-sort (1.5-2x), slightly more RAM on large problems
//   - higher speedup over FINUFFT at low accuracy and large size
//   - spreading occupies >90% of exec time in all cases
//   - GM-sort/SM RAM overhead over the GM baseline is modest (~20%)
//
// Flags: --nbig (default 96; paper 256), --reps.
#include <cstdio>

#include "libs.hpp"

using namespace cf;
using namespace cf::bench;

namespace {

struct CaseResult {
  double exec = 0;
  std::size_t ram = 0;
  double spread_frac = 0;
};

CaseResult run_case(vgpu::Device& dev, const Workload<double>& wl,
                    std::span<const std::int64_t> N, double tol, core::Method method,
                    int reps, double sigma = 2.0) {
  std::vector<float> hx(wl.M), hy(wl.M), hz(wl.M);
  for (std::size_t j = 0; j < wl.M; ++j) {
    hx[j] = float(wl.x[j]);
    hy[j] = float(wl.y[j]);
    hz[j] = float(wl.z[j]);
  }
  std::vector<std::complex<float>> hc(wl.M);
  for (std::size_t j = 0; j < wl.M; ++j)
    hc[j] = {float(wl.c[j].real()), float(wl.c[j].imag())};

  const std::size_t base = dev.bytes_in_use();
  core::Options opts;
  opts.method = method;
  opts.upsampfac = sigma;
  core::Plan<float> plan(dev, 1, N, +1, tol, opts);
  vgpu::device_buffer<float> dx(dev, std::span<const float>(hx)),
      dy(dev, std::span<const float>(hy)), dz(dev, std::span<const float>(hz));
  vgpu::device_buffer<std::complex<float>> dc(dev,
                                              std::span<const std::complex<float>>(hc));
  std::int64_t ntot = 1;
  for (auto n : N) ntot *= n;
  vgpu::device_buffer<std::complex<float>> df(dev, static_cast<std::size_t>(ntot));
  plan.set_points(wl.M, dx.data(), dy.data(), dz.data());

  CaseResult r;
  r.ram = dev.bytes_in_use() - base;
  double best = 1e300, frac = 0;
  for (int rep = 0; rep < reps + 1; ++rep) {
    Timer t;
    plan.execute(dc.data(), df.data());
    const double e = t.seconds();
    if (rep == 0) continue;
    if (e < best) {
      best = e;
      const auto& bd = plan.last_breakdown();
      frac = bd.spread / bd.total();
    }
  }
  r.exec = best;
  r.spread_frac = 100.0 * frac;
  return r;
}

double finufft_exec(ThreadPool& pool, const Workload<double>& wl,
                    std::span<const std::int64_t> N, double tol, int reps) {
  std::vector<float> hx(wl.M), hy(wl.M), hz(wl.M);
  for (std::size_t j = 0; j < wl.M; ++j) {
    hx[j] = float(wl.x[j]);
    hy[j] = float(wl.y[j]);
    hz[j] = float(wl.z[j]);
  }
  std::vector<std::complex<float>> hc(wl.M);
  for (std::size_t j = 0; j < wl.M; ++j)
    hc[j] = {float(wl.c[j].real()), float(wl.c[j].imag())};
  std::int64_t ntot = 1;
  for (auto n : N) ntot *= n;
  std::vector<std::complex<float>> hf(static_cast<std::size_t>(ntot));
  cpu::CpuPlan<float> plan(pool, 1, N, +1, tol);
  plan.set_points(wl.M, hx.data(), hy.data(), hz.data());
  double best = 1e300;
  for (int rep = 0; rep < reps + 1; ++rep) {
    Timer t;
    plan.execute(hc.data(), hf.data());
    if (rep > 0) best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 2));
  const std::int64_t nbig = cli.get_int("nbig", 96);

  banner("Table I — 3D type-1 exec time, GPU RAM, speedup vs FINUFFT, spread %",
         "SM 1.5-2x over GM-sort; speedup grows at low accuracy / large size; "
         "spreading >90% of exec; sort-array RAM overhead ~20% vs GM");

  vgpu::Device dev;
  ThreadPool pool;

  Table t({"eps", "N^3", "M", "method", "exec (s)", "RAM (MB)", "spdup vs finufft",
           "spread %"});
  for (double tol : {1e-2, 1e-5}) {
    for (std::int64_t Naxis : {std::int64_t(32), nbig}) {
      const std::vector<std::int64_t> N(3, Naxis);
      const std::size_t M = static_cast<std::size_t>(8 * Naxis * Naxis * Naxis);  // rho=1
      auto wl = make_workload<double>(3, M, Dist::Rand, 2 * Naxis);
      const double fin = finufft_exec(pool, wl, N, tol, reps);
      for (auto method : {core::Method::GMSort, core::Method::SM}) {
        const auto r = run_case(dev, wl, N, tol, method, reps);
        t.add_row({Table::fmt_sci(tol, 0), std::to_string(Naxis),
                   Table::fmt_sci(double(M), 2), core::method_name(method),
                   Table::fmt(r.exec, 4), Table::fmt(double(r.ram) / 1048576.0, 0),
                   Table::fmt(fin / r.exec, 1) + "x", Table::fmt(r.spread_frac, 1)});
      }
      // GM baseline RAM for the overhead comparison (no sort arrays).
      const auto gm = run_case(dev, wl, N, tol, core::Method::GM, reps);
      t.add_row({Table::fmt_sci(tol, 0), std::to_string(Naxis),
                 Table::fmt_sci(double(M), 2), "GM (RAM baseline)",
                 Table::fmt(gm.exec, 4), Table::fmt(double(gm.ram) / 1048576.0, 0),
                 Table::fmt(fin / gm.exec, 1) + "x", Table::fmt(gm.spread_frac, 1)});
      // Low-upsampling row: sigma = 1.25 shrinks the fine grid (and the FFT
      // under it) (2/1.25)^3 ~ 4.1x while widening the kernel — RAM is the
      // Table-I metric this mode targets. GM-sort only: SM's padded bin
      // exceeds shared memory at the wider width in 3D fp32.
      const auto low = run_case(dev, wl, N, tol, core::Method::GMSort, reps, 1.25);
      t.add_row({Table::fmt_sci(tol, 0), std::to_string(Naxis),
                 Table::fmt_sci(double(M), 2), "GM-sort (sigma=1.25)",
                 Table::fmt(low.exec, 4), Table::fmt(double(low.ram) / 1048576.0, 0),
                 Table::fmt(fin / low.exec, 1) + "x", Table::fmt(low.spread_frac, 1)});
    }
  }
  t.print();
  return 0;
}
