// Fig. 3 reproduction: interpolation method comparison (GM vs GM-sort).
//
// Execution time per nonuniform point vs fine-grid size for the "rand"
// distribution in 2D and 3D, eps = 1e-5, fp32. "total" includes bin-sorting.
//
// Paper shape to reproduce:
//   - GM-sort wins for large grids (4.5x in 2D at 2^12, 12.7x in 3D at 2^9)
//   - unlike spreading, sorted execution never becomes slower than GM
//     (reads have no conflicts)
//
// Flags: --reps N, --full.
#include <cstdio>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "spreadinterp/binsort.hpp"
#include "spreadinterp/spread.hpp"
#include "vgpu/buffer.hpp"
#include "vgpu/device.hpp"

using namespace cf;
using bench::Dist;

namespace {

void run_sweep(vgpu::Device& dev, int dim, const std::vector<std::int64_t>& sizes,
               int reps) {
  std::printf("\n--- %dD rand, rho=1, eps=1e-5 (fp32) --- [ns per nonuniform point]\n",
              dim);
  Table t({"nf/axis", "M", "interp GM", "interp GM-sort", "total GM-sort", "spdup"});
  const auto kp = spread::KernelParams<float>::from_width(6);
  for (auto nf : sizes) {
    spread::GridSpec grid;
    grid.dim = dim;
    for (int d = 0; d < dim; ++d) grid.nf[d] = nf;
    const auto bins = spread::BinSpec::make(grid, spread::BinSpec::default_size(dim));
    const std::size_t M = static_cast<std::size_t>(grid.total());

    auto wl = bench::make_workload<float>(dim, M, Dist::Rand, nf);
    vgpu::device_buffer<float> xg(dev, M), yg(dev, dim >= 2 ? M : 0),
        zg(dev, dim >= 3 ? M : 0);
    dev.launch_items(M, 256, [&](std::size_t j, vgpu::BlockCtx&) {
      xg[j] = spread::fold_rescale(wl.x[j], grid.nf[0]);
      if (dim >= 2) yg[j] = spread::fold_rescale(wl.y[j], grid.nf[1]);
      if (dim >= 3) zg[j] = spread::fold_rescale(wl.z[j], grid.nf[2]);
    });
    spread::NuPoints<float> pts{xg.data(), dim >= 2 ? yg.data() : nullptr,
                                dim >= 3 ? zg.data() : nullptr, M};
    // A filled fine grid to gather from.
    vgpu::device_buffer<std::complex<float>> fw(dev,
                                                static_cast<std::size_t>(grid.total()));
    dev.launch_items(fw.size(), 256, [&](std::size_t i, vgpu::BlockCtx&) {
      fw[i] = {float(i % 7) - 3.0f, float(i % 5) - 2.0f};
    });
    std::vector<std::complex<float>> c(M);

    const double t_gm = time_best([&] {
      spread::interp<float>(dev, grid, kp, pts, fw.data(), c.data(), nullptr);
    }, reps);
    spread::DeviceSort sort;
    const double t_sort = time_best([&] {
      spread::bin_sort<float>(dev, grid, bins, xg.data(), pts.yg, pts.zg, M, sort);
    }, reps);
    const double t_sorted = time_best([&] {
      spread::interp<float>(dev, grid, kp, pts, fw.data(), c.data(), sort.order.data());
    }, reps);

    t.add_row({std::to_string(nf), Table::fmt_sci(double(M), 1), bench::fmt_ns(t_gm, M),
               bench::fmt_ns(t_sorted, M), bench::fmt_ns(t_sort + t_sorted, M),
               Table::fmt(t_gm / t_sorted, 1) + "x"});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const bool full = cli.has("full");

  bench::banner("Fig. 3 — interpolation GM vs GM-sort",
                "GM-sort 4.5x (2D) / 12.7x (3D) faster at the largest grids; "
                "sorted exec never slower than GM");

  vgpu::Device dev;
  run_sweep(dev, 2,
            full ? std::vector<std::int64_t>{128, 256, 512, 1024, 2048, 4096}
                 : std::vector<std::int64_t>{128, 256, 512, 1024},
            reps);
  run_sweep(dev, 3,
            full ? std::vector<std::int64_t>{32, 64, 128, 256}
                 : std::vector<std::int64_t>{32, 64, 128},
            reps);
  return 0;
}
