// Fig. 7 reproduction: double-precision library comparison vs accuracy.
//
// Same layout as Figs. 4+5 but fp64 with tolerances down to 1e-12. gpuNUFFT
// is excluded exactly as in the paper ("its eps appears always to exceed
// 1e-3"). In 3D, SM is unavailable in double precision (paper Rmk. 2), so
// cuFINUFFT runs GM-sort there — reproducing the paper's method labels.
//
// Paper shape to reproduce:
//   - 2D type 1: cuFINUFFT 1-2 orders of magnitude faster; SM best at high
//     accuracy, GM-sort at low accuracy
//   - 3D type 1: cuFINUFFT faster only for eps >= 1e-10, matching FINUFFT at
//     the highest accuracies
//   - type 2: cuFINUFFT always fastest, ~6x exec over FINUFFT
//
// Flags: --n2d, --n3d, --m, --reps, --full.
#include <cstdio>

#include "libs.hpp"

using namespace cf;
using namespace cf::bench;

namespace {

void run_panel(vgpu::Device& dev, ThreadPool& pool, int dim, int type, std::int64_t Naxis,
               std::size_t M, const std::vector<double>& tols, int reps) {
  std::printf("\n--- %dD Type %d, N=%lld^%d, M=%.1e, rand (fp64) ---\n", dim, type,
              (long long)Naxis, dim, double(M));
  std::vector<std::int64_t> N(static_cast<std::size_t>(dim), Naxis);
  auto wl = make_workload<double>(dim, M, Dist::Rand, 2 * Naxis);
  auto gt = make_ground_truth(pool, wl, N);

  Table t({"library", "req tol", "rel l2 err", "total+mem ns/pt", "total ns/pt",
           "exec ns/pt"});
  const std::vector<Lib> libs = {Lib::Finufft, Lib::CufinufftSM, Lib::CufinufftGMSort,
                                 Lib::Cunfft};
  for (double tol : tols) {
    for (Lib lib : libs) {
      if (type == 2 && lib == Lib::CufinufftSM) continue;
      const auto r = run_lib<double>(lib, dev, pool, type, N, tol, wl, gt, reps);
      if (!r.ok) {
        // SM in 3D double exceeds shared memory: the paper's Rmk. 2.
        t.add_row({lib_name(lib), Table::fmt_sci(tol, 0), "unsupported (Rmk. 2)", "-",
                   "-", "-"});
        continue;
      }
      t.add_row({lib_name(lib), Table::fmt_sci(tol, 0), Table::fmt_sci(r.err, 1),
                 fmt_ns(r.total_mem, M), fmt_ns(r.total, M), fmt_ns(r.exec, M)});
    }
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const bool full = cli.has("full");
  const int reps = static_cast<int>(cli.get_int("reps", 2));
  const std::int64_t n2d = cli.get_int("n2d", full ? 1000 : 512);
  const std::int64_t n3d = cli.get_int("n3d", full ? 100 : 64);
  const std::size_t M =
      static_cast<std::size_t>(cli.get_int("m", full ? 10000000 : 1000000));

  banner("Fig. 7 — double-precision comparison vs accuracy",
         "2D type 1: cuFINUFFT 1-2 orders faster; 3D type 1: ahead for eps>=1e-10; "
         "type 2: always fastest (~6x exec); gpuNUFFT excluded (accuracy floor)");

  vgpu::Device dev;
  ThreadPool pool;
  const std::vector<double> tols = full
      ? std::vector<double>{1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12}
      : std::vector<double>{1e-2, 1e-5, 1e-8, 1e-11};

  for (int type : {1, 2}) run_panel(dev, pool, 2, type, n2d, M, tols, reps);
  for (int type : {1, 2}) run_panel(dev, pool, 3, type, n3d, M, tols, reps);
  return 0;
}
